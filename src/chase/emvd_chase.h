#ifndef CCFP_CHASE_EMVD_CHASE_H_
#define CCFP_CHASE_EMVD_CHASE_H_

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "core/dependency.h"
#include "core/workspace.h"
#include "util/status.h"

namespace ccfp {

/// Bounded chase for embedded multivalued dependencies (Section 5 context:
/// the Sagiv–Walecka family). EMVDs are embedded tuple-generating
/// dependencies, so the chase may not terminate; all entry points are
/// budgeted and can return ResourceExhausted ("unknown").

/// Which EMVD chase engine to run.
enum class EmvdChaseEngine : std::uint8_t {
  /// Id-space engine on an InternedWorkspace (core/workspace.h): XY/XZ
  /// projections are dense partition group ids maintained incrementally
  /// across rounds (the chase is append-only, so partitions only extend),
  /// the witnessed-pair set is packed 64-bit group-id pairs, and fresh
  /// labeled nulls are new ValueIds — no heap Tuple is built or hashed per
  /// pair. The default.
  kWorkspace = 0,
  /// The original heap-Value engine (per-pair projected Tuple keys), kept
  /// as the differential reference (tests/emvd_chase_property_test.cc).
  kLegacy = 1,
};

struct EmvdChaseOptions {
  std::uint64_t max_tuples = 1u << 14;
  std::uint64_t max_rounds = 64;
  EmvdChaseEngine engine = EmvdChaseEngine::kWorkspace;
};

/// Saturates `db` under the EMVDs: for every violated pair (t1, t2) adds
/// the witness tuple t3 with t3[XY] = t1[XY], t3[XZ] = t2[XZ] and fresh
/// labeled nulls elsewhere. Returns tuples added, or ResourceExhausted.
/// Both engines produce identical databases (same tuples, same null
/// labels, same order) and hit budget boundaries at the same point; on
/// ResourceExhausted `db` holds the partial chase so far.
Result<std::uint64_t> EmvdChaseFixpoint(Database& db,
                                        const std::vector<Emvd>& sigma,
                                        const EmvdChaseOptions& options = {});

/// The id-space core: saturates the tuples already in `ws` (and any the
/// chase adds) under the EMVDs, entirely in id-space. The workspace is
/// caller-owned, so repeated chases over a growing instance — or a chase
/// followed by Satisfies probes — reuse the same interner and partitions.
/// Requires a workspace with no pending merges (the EMVD chase itself
/// never merges). Returns tuples added, or ResourceExhausted with the
/// partial chase left in `ws`.
Result<std::uint64_t> EmvdChaseFixpointOnWorkspace(
    InternedWorkspace& ws, const std::vector<Emvd>& sigma,
    const EmvdChaseOptions& options = {});

/// Semi-decides Sigma |= target by chasing the canonical two-tuple database
/// of the target (tuples sharing labeled nulls exactly on target.x). Exact
/// when the chase reaches a fixpoint; ResourceExhausted otherwise.
Result<bool> EmvdChaseImplies(SchemePtr scheme,
                              const std::vector<Emvd>& sigma,
                              const Emvd& target,
                              const EmvdChaseOptions& options = {});

}  // namespace ccfp

#endif  // CCFP_CHASE_EMVD_CHASE_H_
