#ifndef CCFP_CHASE_EMVD_CHASE_H_
#define CCFP_CHASE_EMVD_CHASE_H_

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "core/dependency.h"
#include "util/status.h"

namespace ccfp {

/// Bounded chase for embedded multivalued dependencies (Section 5 context:
/// the Sagiv–Walecka family). EMVDs are embedded tuple-generating
/// dependencies, so the chase may not terminate; all entry points are
/// budgeted and can return ResourceExhausted ("unknown").

struct EmvdChaseOptions {
  std::uint64_t max_tuples = 1u << 14;
  std::uint64_t max_rounds = 64;
};

/// Saturates `db` under the EMVDs: for every violated pair (t1, t2) adds
/// the witness tuple t3 with t3[XY] = t1[XY], t3[XZ] = t2[XZ] and fresh
/// labeled nulls elsewhere. Returns tuples added, or ResourceExhausted.
Result<std::uint64_t> EmvdChaseFixpoint(Database& db,
                                        const std::vector<Emvd>& sigma,
                                        const EmvdChaseOptions& options = {});

/// Semi-decides Sigma |= target by chasing the canonical two-tuple database
/// of the target (tuples sharing labeled nulls exactly on target.x). Exact
/// when the chase reaches a fixpoint; ResourceExhausted otherwise.
Result<bool> EmvdChaseImplies(SchemePtr scheme,
                              const std::vector<Emvd>& sigma,
                              const Emvd& target,
                              const EmvdChaseOptions& options = {});

}  // namespace ccfp

#endif  // CCFP_CHASE_EMVD_CHASE_H_
