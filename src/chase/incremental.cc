#include "chase/incremental.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/intern.h"
#include "util/check.h"

namespace ccfp {

namespace {

struct TupleRef {
  RelId rel;
  std::uint32_t idx;
};

/// Per-run engine state. See incremental.h for the design overview.
class Engine {
 public:
  Engine(const SchemePtr& scheme, const std::vector<Fd>& fds,
         const std::vector<Ind>& inds, const ChaseOptions& options)
      : scheme_(scheme), fds_(fds), inds_(inds), options_(options) {
    rels_.resize(scheme_->size());
    fds_by_rel_.resize(scheme_->size());
    for (std::uint32_t i = 0; i < fds_.size(); ++i) {
      fds_by_rel_[fds_[i].rel].push_back(i);
    }
    fd_index_.resize(fds_.size());
    ind_states_.resize(inds_.size());
    inds_by_lhs_rel_.resize(scheme_->size());
    inds_by_rhs_rel_.resize(scheme_->size());
    for (std::uint32_t i = 0; i < inds_.size(); ++i) {
      inds_by_lhs_rel_[inds_[i].lhs_rel].push_back(i);
      inds_by_rhs_rel_[inds_[i].rhs_rel].push_back(i);
    }
  }

  Result<InternedChaseResult> Run(Database initial);

 private:
  struct RelState {
    /// Stored value ids. Canonical whenever the tuple is not in the dirty
    /// queue; possibly stale (pre-merge ids) while queued.
    std::vector<IdTuple> tuples;
    std::vector<std::uint8_t> alive;
    std::vector<std::uint8_t> queued;  ///< in fd_dirty_
    /// Canonical form -> owning alive tuple (duplicate detection).
    std::unordered_map<IdTuple, std::uint32_t, IdTupleHash> dedup;
  };

  struct IndState {
    /// Canonical rhs projections present in the rhs relation. Insert-only:
    /// entries whose ids have since been merged away contain non-root ids
    /// and therefore can never collide with a canonical probe key, so
    /// stale entries are harmless (and erasure would cost a lookup per
    /// merge per index).
    std::unordered_set<IdTuple, IdTupleHash> rhs_keys;
    /// Lhs tuples whose canonical form changed since the last pass.
    std::vector<std::uint32_t> dirty;
    /// Lhs tuples below this index were scanned in earlier passes.
    std::uint32_t cursor = 0;
  };

  IdTuple CanonProj(const IdTuple& t, const std::vector<AttrId>& cols) {
    IdTuple out;
    out.reserve(cols.size());
    for (AttrId c : cols) out.push_back(uf_.Find(t[c]));
    return out;
  }

  void EnqueueFdDirty(RelId rel, std::uint32_t idx) {
    RelState& rs = rels_[rel];
    if (rs.queued[idx]) return;
    rs.queued[idx] = 1;
    fd_dirty_.push_back(TupleRef{rel, idx});
  }

  void RegisterOccurrences(RelId rel, std::uint32_t idx, const IdTuple& t) {
    if (occurrences_.size() < interner_.size()) {
      occurrences_.resize(interner_.size());
    }
    uf_.EnsureSize(interner_.size());
    for (ValueId id : t) occurrences_[id].push_back(TupleRef{rel, idx});
  }

  /// Records t's canonical rhs-side projections in every IND targeting
  /// `rel`, so IND probes see them without rescanning the relation.
  void RegisterRhsProjections(RelId rel, const IdTuple& t) {
    for (std::uint32_t ind_id : inds_by_rhs_rel_[rel]) {
      ind_states_[ind_id].rhs_keys.insert(CanonProj(t, inds_[ind_id].rhs));
    }
  }

  /// Seeds one tuple of the initial database (already deduplicated by
  /// Relation). Does not count toward ind_tuples.
  void AdmitLoaded(RelId rel, IdTuple t) {
    RelState& rs = rels_[rel];
    std::uint32_t idx = static_cast<std::uint32_t>(rs.tuples.size());
    rs.dedup.emplace(t, idx);
    RegisterOccurrences(rel, idx, t);
    rs.tuples.push_back(std::move(t));
    rs.alive.push_back(1);
    rs.queued.push_back(0);
    ++alive_count_;
    RegisterRhsProjections(rel, rs.tuples[idx]);
    EnqueueFdDirty(rel, idx);
  }

  /// Inserts an IND-generated tuple (ids already canonical).
  Status InsertGenerated(RelId rel, IdTuple t) {
    RelState& rs = rels_[rel];
    std::uint32_t idx = static_cast<std::uint32_t>(rs.tuples.size());
    auto [it, inserted] = rs.dedup.emplace(std::move(t), idx);
    if (!inserted) return Status::OK();  // already present; nothing to do
    RegisterOccurrences(rel, idx, it->first);
    rs.tuples.push_back(it->first);
    rs.alive.push_back(1);
    rs.queued.push_back(0);
    ++alive_count_;
    ++ind_tuples_;
    RegisterRhsProjections(rel, rs.tuples[idx]);
    EnqueueFdDirty(rel, idx);
    if (++steps_ > options_.max_steps ||
        alive_count_ > options_.max_tuples) {
      return Status::ResourceExhausted("chase budget exhausted");
    }
    return Status::OK();
  }

  /// Re-routes the loser's occurrence list to the winner and dirties every
  /// tuple that stores the losing id — the delta a merge actually touches.
  void TouchLoser(ValueId loser, ValueId winner) {
    std::vector<TupleRef>& from = occurrences_[loser];
    std::vector<TupleRef>& to = occurrences_[winner];
    for (const TupleRef& ref : from) EnqueueFdDirty(ref.rel, ref.idx);
    to.insert(to.end(), from.begin(), from.end());
    from.clear();
    from.shrink_to_fit();
  }

  /// Probes one (canonical, alive) tuple against one FD's persistent
  /// lhs-key index, merging right-hand sides on a key hit.
  Status ProbeFd(std::uint32_t fd_id, RelId rel, std::uint32_t idx) {
    const Fd& fd = fds_[fd_id];
    RelState& rs = rels_[rel];
    IdTuple key = CanonProj(rs.tuples[idx], fd.lhs);
    auto [it, inserted] = fd_index_[fd_id].try_emplace(std::move(key), idx);
    if (inserted || it->second == idx) return Status::OK();
    std::uint32_t rep = it->second;
    const IdTuple& rep_t = rs.tuples[rep];
    // The entry may be stale: the representative's key can have drifted
    // since insertion (its ids merged). A drifted rep was dirtied by the
    // merge and will re-index itself under its new key, so just take over.
    if (CanonProj(rep_t, fd.lhs) != it->first) {
      it->second = idx;
      return Status::OK();
    }
    for (AttrId y : fd.rhs) {
      ValueId a = uf_.Find(rs.tuples[idx][y]);
      ValueId b = uf_.Find(rep_t[y]);
      if (a == b) continue;
      DenseUnionFind::UnionResult u = uf_.Union(a, b, interner_);
      if (u.clash) {
        failed_ = true;
        return Status::OK();
      }
      ++fd_merges_;
      if (++steps_ > options_.max_steps) {
        return Status::ResourceExhausted("chase step budget exhausted");
      }
      TouchLoser(u.loser, u.winner);
    }
    return Status::OK();
  }

  /// Drains the dirty worklist: re-canonicalize, re-deduplicate, and
  /// re-probe each touched tuple until the FD fixpoint is reached.
  Status DrainFdDirty() {
    while (!fd_dirty_.empty() && !failed_) {
      TupleRef ref = fd_dirty_.front();
      fd_dirty_.pop_front();
      RelState& rs = rels_[ref.rel];
      rs.queued[ref.idx] = 0;
      if (!rs.alive[ref.idx]) continue;
      IdTuple& stored = rs.tuples[ref.idx];
      bool changed = false;
      for (ValueId id : stored) {
        if (uf_.Find(id) != id) {
          changed = true;
          break;
        }
      }
      if (changed) {
        auto old_it = rs.dedup.find(stored);
        if (old_it != rs.dedup.end() && old_it->second == ref.idx) {
          rs.dedup.erase(old_it);
        }
        for (ValueId& id : stored) id = uf_.Find(id);
        auto [new_it, inserted] = rs.dedup.emplace(stored, ref.idx);
        if (!inserted) {
          // Collapsed onto an alive twin; the twin carries all duties.
          rs.alive[ref.idx] = 0;
          --alive_count_;
          continue;
        }
        RegisterRhsProjections(ref.rel, stored);
        for (std::uint32_t ind_id : inds_by_lhs_rel_[ref.rel]) {
          ind_states_[ind_id].dirty.push_back(ref.idx);
        }
      }
      for (std::uint32_t fd_id : fds_by_rel_[ref.rel]) {
        CCFP_RETURN_NOT_OK(ProbeFd(fd_id, ref.rel, ref.idx));
        if (failed_) return Status::OK();
        if (!rs.alive[ref.idx]) break;  // merged away by its own probe
      }
    }
    return Status::OK();
  }

  /// Fires one IND on one lhs tuple: if its canonical projection is not
  /// yet present on the rhs, create the witness with fresh-null padding.
  Status ProbeInd(std::uint32_t ind_id, std::uint32_t idx, bool* any) {
    const Ind& ind = inds_[ind_id];
    RelState& rs = rels_[ind.lhs_rel];
    if (!rs.alive[idx]) return Status::OK();
    IdTuple key = CanonProj(rs.tuples[idx], ind.lhs);
    auto [it, inserted] = ind_states_[ind_id].rhs_keys.insert(std::move(key));
    if (!inserted) return Status::OK();
    std::size_t arity = scheme_->relation(ind.rhs_rel).arity();
    IdTuple fresh(arity, 0);
    // Fresh labels for every position, then overwrite the constrained ones
    // — byte-for-byte the naive engine's numbering, so the two engines
    // produce identically-labeled databases on deterministic inputs.
    for (std::size_t a = 0; a < arity; ++a) {
      fresh[a] = interner_.InternFreshNull();
    }
    for (std::size_t i = 0; i < ind.width(); ++i) {
      fresh[ind.rhs[i]] = (*it)[i];
    }
    *any = true;
    return InsertGenerated(ind.rhs_rel, std::move(fresh));
  }

  /// One pass over the INDs in declaration order — but each IND only looks
  /// at its delta: tuples beyond its cursor plus tuples whose canonical
  /// form changed since its last pass.
  Status IndPass(bool* any) {
    for (std::uint32_t ind_id = 0; ind_id < inds_.size(); ++ind_id) {
      const Ind& ind = inds_[ind_id];
      IndState& is = ind_states_[ind_id];
      std::uint32_t end =
          static_cast<std::uint32_t>(rels_[ind.lhs_rel].tuples.size());
      std::vector<std::uint32_t> touched;
      touched.swap(is.dirty);
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()),
                    touched.end());
      // Ascending over touched-then-new matches the naive full scan's
      // tuple order (touched indexes all precede the cursor).
      for (std::uint32_t idx : touched) {
        if (idx >= is.cursor) continue;  // the range below covers it
        CCFP_RETURN_NOT_OK(ProbeInd(ind_id, idx, any));
      }
      for (std::uint32_t idx = is.cursor; idx < end; ++idx) {
        CCFP_RETURN_NOT_OK(ProbeInd(ind_id, idx, any));
      }
      is.cursor = end;
    }
    return Status::OK();
  }

  /// Hands the interned store over as an IdDatabase: each alive tuple's
  /// ids mapped through the union-find to the class representative, the
  /// interner moved wholesale. No Value is copied or hashed here; callers
  /// recover the heap Database via IdDatabase::Materialize when needed.
  InternedChaseResult Finish() {
    std::vector<std::vector<IdTuple>> tuples(scheme_->size());
    for (RelId rel = 0; rel < scheme_->size(); ++rel) {
      RelState& rs = rels_[rel];
      tuples[rel].reserve(rs.tuples.size());
      for (std::size_t idx = 0; idx < rs.tuples.size(); ++idx) {
        if (!rs.alive[idx]) continue;
        IdTuple t;
        t.reserve(rs.tuples[idx].size());
        for (ValueId id : rs.tuples[idx]) {
          // Rep, not Find: the tree root is a structural artifact; the
          // class prints as its constant / lowest-labeled null.
          t.push_back(uf_.Rep(id));
        }
        tuples[rel].push_back(std::move(t));
      }
    }
    InternedChaseResult result(
        IdDatabase(scheme_, std::move(interner_), std::move(tuples)));
    result.outcome =
        failed_ ? ChaseOutcome::kFailed : ChaseOutcome::kFixpoint;
    result.fd_merges = fd_merges_;
    result.ind_tuples = ind_tuples_;
    result.steps = steps_;
    return result;
  }

  SchemePtr scheme_;
  const std::vector<Fd>& fds_;
  const std::vector<Ind>& inds_;
  const ChaseOptions& options_;

  ValueInterner interner_;
  DenseUnionFind uf_;
  std::vector<RelState> rels_;
  std::vector<std::vector<TupleRef>> occurrences_;  // by ValueId

  std::vector<std::vector<std::uint32_t>> fds_by_rel_;
  std::vector<std::unordered_map<IdTuple, std::uint32_t, IdTupleHash>>
      fd_index_;  // per FD: canonical lhs key -> representative tuple
  std::vector<IndState> ind_states_;
  std::vector<std::vector<std::uint32_t>> inds_by_lhs_rel_;
  std::vector<std::vector<std::uint32_t>> inds_by_rhs_rel_;

  std::deque<TupleRef> fd_dirty_;
  std::uint64_t alive_count_ = 0;
  std::uint64_t fd_merges_ = 0;
  std::uint64_t ind_tuples_ = 0;
  std::uint64_t steps_ = 0;
  bool failed_ = false;
};

Result<InternedChaseResult> Engine::Run(Database initial) {
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    const Relation& r = initial.relation(rel);
    rels_[rel].tuples.reserve(r.size());
    for (const Tuple& t : r.tuples()) {
      IdTuple it;
      it.reserve(t.size());
      for (const Value& v : t) it.push_back(interner_.Intern(v));
      AdmitLoaded(rel, std::move(it));
    }
  }
  while (true) {
    CCFP_RETURN_NOT_OK(DrainFdDirty());
    if (failed_) break;
    bool any = false;
    CCFP_RETURN_NOT_OK(IndPass(&any));
    if (!any) break;
  }
  return Finish();
}

}  // namespace

Result<ChaseResult> RunIncrementalChase(const SchemePtr& scheme,
                                        const std::vector<Fd>& fds,
                                        const std::vector<Ind>& inds,
                                        Database initial,
                                        const ChaseOptions& options) {
  Engine engine(scheme, fds, inds, options);
  CCFP_ASSIGN_OR_RETURN(InternedChaseResult interned,
                        engine.Run(std::move(initial)));
  ChaseResult result(interned.db.Materialize());
  result.outcome = interned.outcome;
  result.fd_merges = interned.fd_merges;
  result.ind_tuples = interned.ind_tuples;
  result.steps = interned.steps;
  return result;
}

Result<InternedChaseResult> RunIncrementalChaseInterned(
    const SchemePtr& scheme, const std::vector<Fd>& fds,
    const std::vector<Ind>& inds, Database initial,
    const ChaseOptions& options) {
  Engine engine(scheme, fds, inds, options);
  return engine.Run(std::move(initial));
}

}  // namespace ccfp
