#include "chase/incremental.h"

#include <utility>

#include "chase/workspace_chase.h"
#include "core/workspace.h"

namespace ccfp {

// Since PR 3 the delta-driven engine lives in chase/workspace_chase.{h,cc},
// hosted on the persistent InternedWorkspace substrate (core/workspace.h) so
// the same machinery serves one-shot chases here and resumable chases in the
// Armstrong repair loop. These entry points keep the PR 1 one-shot contract:
// fresh workspace, one Run, results handed over interned.

Result<InternedChaseResult> RunIncrementalChaseInterned(
    const SchemePtr& scheme, const std::vector<Fd>& fds,
    const std::vector<Ind>& inds, Database initial,
    const ChaseOptions& options) {
  InternedWorkspace ws(scheme);
  ws.AppendDatabase(initial);
  WorkspaceChase chaser(&ws, fds, inds);
  CCFP_ASSIGN_OR_RETURN(WorkspaceChaseStats stats, chaser.Run(options));
  InternedChaseResult result(std::move(ws).ExportIdDatabase());
  result.outcome = stats.outcome;
  result.fd_merges = stats.fd_merges;
  result.ind_tuples = stats.ind_tuples;
  result.steps = stats.steps;
  return result;
}

Result<ChaseResult> RunIncrementalChase(const SchemePtr& scheme,
                                        const std::vector<Fd>& fds,
                                        const std::vector<Ind>& inds,
                                        Database initial,
                                        const ChaseOptions& options) {
  CCFP_ASSIGN_OR_RETURN(
      InternedChaseResult interned,
      RunIncrementalChaseInterned(scheme, fds, inds, std::move(initial),
                                  options));
  ChaseResult result(interned.db.Materialize());
  result.outcome = interned.outcome;
  result.fd_merges = interned.fd_merges;
  result.ind_tuples = interned.ind_tuples;
  result.steps = interned.steps;
  return result;
}

}  // namespace ccfp
