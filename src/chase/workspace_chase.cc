#include "chase/workspace_chase.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/check.h"
#include "util/fault.h"

namespace ccfp {

WorkspaceChase::WorkspaceChase(InternedWorkspace* ws, std::vector<Fd> fds,
                               std::vector<Ind> inds)
    : ws_(ws), fds_(std::move(fds)), inds_(std::move(inds)) {
  const DatabaseScheme& scheme = ws_->scheme();
  for (const Fd& fd : fds_) {
    Status st = Validate(scheme, fd);
    CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
  }
  for (const Ind& ind : inds_) {
    Status st = Validate(scheme, ind);
    CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
  }
  std::size_t n = scheme.size();
  fds_by_rel_.resize(n);
  for (std::uint32_t i = 0; i < fds_.size(); ++i) {
    fds_by_rel_[fds_[i].rel].push_back(i);
  }
  fd_index_.resize(fds_.size());
  ind_states_.resize(inds_.size());
  inds_by_lhs_rel_.resize(n);
  inds_by_rhs_rel_.resize(n);
  for (std::uint32_t i = 0; i < inds_.size(); ++i) {
    inds_by_lhs_rel_[inds_[i].lhs_rel].push_back(i);
    inds_by_rhs_rel_[inds_[i].rhs_rel].push_back(i);
  }
  queued_.resize(n);
  admitted_.resize(n, 0);
  admit_cursor_.resize(n, 0);
  feed_cursor_ = ws_->RegisterFeedCursor();
}

WorkspaceChase::~WorkspaceChase() { ws_->ReleaseFeedCursor(feed_cursor_); }

Status WorkspaceChase::BudgetCheckpoint() {
  if (FaultFires(FaultSite::kEngineExhaust)) {
    return Status::ResourceExhausted("injected chase exhaustion");
  }
  if ((checkpoint_tick_++ & 63) != 0) return Status::OK();
  if (options_->deadline.has_value() &&
      std::chrono::steady_clock::now() >= *options_->deadline) {
    return Status::ResourceExhausted("chase deadline exceeded");
  }
  if (options_->max_bytes != UINT64_MAX &&
      ws_->MemoryUsage().Total() > options_->max_bytes) {
    return Status::ResourceExhausted("chase byte ceiling exceeded");
  }
  return Status::OK();
}

void WorkspaceChase::EnqueueFdDirty(RelId rel, std::uint32_t idx) {
  std::vector<std::uint8_t>& q = queued_[rel];
  if (q.size() <= idx) q.resize(ws_->size(rel), 0);
  if (q[idx]) return;
  q[idx] = 1;
  fd_dirty_.push_back(WorkspaceTupleRef{rel, idx});
}

void WorkspaceChase::RegisterRhsProjections(RelId rel, std::uint32_t idx) {
  for (std::uint32_t ind_id : inds_by_rhs_rel_[rel]) {
    ind_states_[ind_id].rhs_keys.insert(
        ws_->CanonicalProjection(rel, idx, inds_[ind_id].rhs));
  }
}

void WorkspaceChase::AdmitSlot(RelId rel, std::uint32_t idx) {
  RegisterRhsProjections(rel, idx);
  EnqueueFdDirty(rel, idx);
  if (admitted_[rel] <= idx) admitted_[rel] = idx + 1;
}

void WorkspaceChase::AdmitAppended() {
  for (RelId rel = 0; rel < ws_->scheme().size(); ++rel) {
    std::uint64_t end = ws_->EventCount(rel);
    if (admit_cursor_[rel] < ws_->FeedBase(rel)) {
      // Behind the compaction horizon (a forced TrimFeedTo outran us):
      // the feed delta is gone, but between Runs outside parties only
      // append, so scanning the unadmitted slot suffix recovers exactly
      // the lost events.
      std::uint32_t size = static_cast<std::uint32_t>(ws_->size(rel));
      for (std::uint32_t idx = admitted_[rel]; idx < size; ++idx) {
        AdmitSlot(rel, idx);
      }
    } else {
      for (std::uint64_t seq = admit_cursor_[rel]; seq < end; ++seq) {
        const WorkspaceEvent& ev = ws_->event(rel, seq);
        // The chase's own appends were admitted inline (ProbeInd) and its
        // own rewrites/kills are tracked by the dirty worklists; only
        // appends published by outside parties are news.
        if (ev.kind == WorkspaceEventKind::kAppend &&
            ev.idx >= admitted_[rel]) {
          AdmitSlot(rel, ev.idx);
        }
      }
    }
    admit_cursor_[rel] = end;
    ws_->AdvanceFeedCursor(feed_cursor_, rel, end);
  }
}

/// Probes one (canonical, alive) slot against one FD's persistent lhs-key
/// index, merging right-hand sides on a key hit.
Status WorkspaceChase::ProbeFd(std::uint32_t fd_id, RelId rel,
                               std::uint32_t idx) {
  const Fd& fd = fds_[fd_id];
  IdTuple key = ws_->CanonicalProjection(rel, idx, fd.lhs);
  auto [it, inserted] = fd_index_[fd_id].try_emplace(std::move(key), idx);
  if (inserted || it->second == idx) return Status::OK();
  std::uint32_t rep = it->second;
  // The entry may be stale: the representative's key can have drifted
  // since insertion (its ids merged). A drifted rep was dirtied by the
  // merge and will re-index itself under its new key, so just take over.
  if (ws_->CanonicalProjection(rel, rep, fd.lhs) != it->first) {
    it->second = idx;
    return Status::OK();
  }
  const IdTuple& t = ws_->tuple(rel, idx);
  const IdTuple& rep_t = ws_->tuple(rel, rep);
  for (AttrId y : fd.rhs) {
    ValueId a = ws_->Canon(t[y]);
    ValueId b = ws_->Canon(rep_t[y]);
    if (a == b) continue;
    InternedWorkspace::MergeResult u = ws_->MergeValues(a, b);
    if (u.clash) {
      failed_ = true;
      return Status::OK();
    }
    ++fd_merges_;
    // Dirty every slot that stores the losing id — the delta the merge
    // actually touches — then hand its occurrence list to the winner.
    // This must happen *before* the budget check: a ResourceExhausted
    // return with the merge recorded but its slots neither dirtied nor
    // rerouted would leave the workspace unresumable (stale tuples no
    // worklist entry will ever revisit).
    for (const WorkspaceTupleRef& ref : ws_->occurrences(u.loser)) {
      EnqueueFdDirty(ref.rel, ref.idx);
    }
    ws_->RerouteOccurrences(u.loser, u.winner);
    if (++steps_ > options_->max_steps) {
      return Status::ResourceExhausted("chase step budget exhausted");
    }
  }
  return Status::OK();
}

/// Drains the dirty worklist: re-canonicalize, re-deduplicate, and
/// re-probe each touched slot until the FD fixpoint is reached.
Status WorkspaceChase::DrainFdDirty() {
  while (!fd_dirty_.empty() && !failed_) {
    // Checked per slot, *inside* the FD fixpoint: one huge round can no
    // longer blow past the deadline or the byte ceiling unobserved.
    // Checking before the pop keeps exhaustion trivially resumable.
    CCFP_RETURN_NOT_OK(BudgetCheckpoint());
    WorkspaceTupleRef ref = fd_dirty_.front();
    fd_dirty_.pop_front();
    queued_[ref.rel][ref.idx] = 0;
    if (!ws_->alive(ref.rel, ref.idx)) continue;
    InternedWorkspace::CanonOutcome c =
        ws_->CanonicalizeTuple(ref.rel, ref.idx);
    if (c == InternedWorkspace::CanonOutcome::kKilled) continue;
    if (c == InternedWorkspace::CanonOutcome::kRewritten) {
      RegisterRhsProjections(ref.rel, ref.idx);
      for (std::uint32_t ind_id : inds_by_lhs_rel_[ref.rel]) {
        ind_states_[ind_id].dirty.push_back(ref.idx);
      }
    }
    for (std::uint32_t fd_id : fds_by_rel_[ref.rel]) {
      Status st = ProbeFd(fd_id, ref.rel, ref.idx);
      if (!st.ok()) {
        // Budget tripped mid-slot: requeue so a later Run with a larger
        // budget re-probes this slot from its first FD (probes are
        // idempotent once their merge is in the union-find).
        EnqueueFdDirty(ref.rel, ref.idx);
        return st;
      }
      if (failed_) return Status::OK();
      if (!ws_->alive(ref.rel, ref.idx)) break;  // merged away by its probe
    }
  }
  return Status::OK();
}

/// Fires one IND on one lhs slot: if its canonical projection is not yet
/// present on the rhs, create the witness with fresh-null padding.
Status WorkspaceChase::ProbeInd(std::uint32_t ind_id, std::uint32_t idx,
                                bool* any) {
  const Ind& ind = inds_[ind_id];
  if (!ws_->alive(ind.lhs_rel, idx)) return Status::OK();
  CCFP_RETURN_NOT_OK(BudgetCheckpoint());
  IdTuple key = ws_->CanonicalProjection(ind.lhs_rel, idx, ind.lhs);
  auto [it, inserted] = ind_states_[ind_id].rhs_keys.insert(std::move(key));
  if (!inserted) return Status::OK();
  if (FaultFires(FaultSite::kArenaAppend)) {
    // The arena refused to grow. Un-register the key so a resumed Run
    // re-probes this slot and creates the witness then.
    ind_states_[ind_id].rhs_keys.erase(it);
    return Status::ResourceExhausted("injected arena allocation failure");
  }
  std::size_t arity = ws_->scheme().relation(ind.rhs_rel).arity();
  IdTuple fresh(arity, 0);
  // Fresh labels for every position, then overwrite the constrained ones
  // — byte-for-byte the naive engine's numbering, so all engines produce
  // identically-labeled databases on deterministic inputs.
  for (std::size_t a = 0; a < arity; ++a) {
    fresh[a] = ws_->InternFreshNull();
  }
  for (std::size_t i = 0; i < ind.width(); ++i) {
    fresh[ind.rhs[i]] = (*it)[i];
  }
  *any = true;
  if (ws_->Append(ind.rhs_rel, std::move(fresh))) {
    std::uint32_t new_idx =
        static_cast<std::uint32_t>(ws_->size(ind.rhs_rel)) - 1;
    AdmitSlot(ind.rhs_rel, new_idx);
    ++ind_tuples_;
    if (++steps_ > options_->max_steps ||
        ws_->TotalAliveTuples() > options_->max_tuples) {
      return Status::ResourceExhausted("chase budget exhausted");
    }
  }
  return Status::OK();
}

/// One pass over the INDs in declaration order — each IND only looks at
/// its delta: slots beyond its cursor plus slots whose canonical form
/// changed since its last pass.
Status WorkspaceChase::IndPass(bool* any) {
  for (std::uint32_t ind_id = 0; ind_id < inds_.size(); ++ind_id) {
    const Ind& ind = inds_[ind_id];
    IndState& is = ind_states_[ind_id];
    std::uint32_t end = static_cast<std::uint32_t>(ws_->size(ind.lhs_rel));
    std::vector<std::uint32_t> touched;
    touched.swap(is.dirty);
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    // Ascending over touched-then-new matches the naive full scan's tuple
    // order (touched slots all precede the cursor).
    for (std::size_t t = 0; t < touched.size(); ++t) {
      if (touched[t] >= is.cursor) continue;  // the range below covers it
      Status st = ProbeInd(ind_id, touched[t], any);
      if (!st.ok()) {
        // Budget tripped: put the unprocessed tail (and the current slot,
        // whose probe is idempotent) back on the dirty list so a later
        // Run with a larger budget resumes where this one stopped. The
        // cursor was not advanced, so the fresh range re-scans too.
        is.dirty.insert(is.dirty.end(), touched.begin() + t, touched.end());
        return st;
      }
    }
    for (std::uint32_t idx = is.cursor; idx < end; ++idx) {
      CCFP_RETURN_NOT_OK(ProbeInd(ind_id, idx, any));
    }
    is.cursor = end;
  }
  return Status::OK();
}

Result<WorkspaceChaseStats> WorkspaceChase::Run(const ChaseOptions& options) {
  options_ = &options;
  fd_merges_ = ind_tuples_ = steps_ = 0;
  AdmitAppended();
  while (!failed_) {
    CCFP_RETURN_NOT_OK(DrainFdDirty());
    if (failed_) break;
    bool any = false;
    CCFP_RETURN_NOT_OK(IndPass(&any));
    if (!any) break;
  }
  // Everything published so far — including this Run's own appends,
  // rewrites, and kills — is incorporated; expose that via the cursor so
  // mid-chase verifiers know the chase is caught up with the feed, and
  // advance the registered cursor so compaction can reclaim the prefix.
  for (RelId rel = 0; rel < ws_->scheme().size(); ++rel) {
    admit_cursor_[rel] = ws_->EventCount(rel);
    ws_->AdvanceFeedCursor(feed_cursor_, rel, admit_cursor_[rel]);
  }
  WorkspaceChaseStats stats;
  stats.outcome = failed_ ? ChaseOutcome::kFailed : ChaseOutcome::kFixpoint;
  stats.fd_merges = fd_merges_;
  stats.ind_tuples = ind_tuples_;
  stats.steps = steps_;
  return stats;
}

}  // namespace ccfp
