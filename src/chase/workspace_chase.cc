#include "chase/workspace_chase.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/fault.h"

namespace ccfp {

WorkspaceChase::WorkspaceChase(InternedWorkspace* ws, std::vector<Fd> fds,
                               std::vector<Ind> inds)
    : ws_(ws), fds_(std::move(fds)), inds_(std::move(inds)) {
  const DatabaseScheme& scheme = ws_->scheme();
  for (const Fd& fd : fds_) {
    Status st = Validate(scheme, fd);
    CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
  }
  for (const Ind& ind : inds_) {
    Status st = Validate(scheme, ind);
    CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
  }
  std::size_t n = scheme.size();
  fds_by_rel_.resize(n);
  for (std::uint32_t i = 0; i < fds_.size(); ++i) {
    fds_by_rel_[fds_[i].rel].push_back(i);
  }
  fd_index_.resize(fds_.size());
  ind_states_.resize(inds_.size());
  inds_by_lhs_rel_.resize(n);
  inds_by_rhs_rel_.resize(n);
  for (std::uint32_t i = 0; i < inds_.size(); ++i) {
    inds_by_lhs_rel_[inds_[i].lhs_rel].push_back(i);
    inds_by_rhs_rel_[inds_[i].rhs_rel].push_back(i);
  }
  queued_.resize(n);
  admitted_.resize(n, 0);
  admit_cursor_.resize(n, 0);
  feed_cursor_ = ws_->RegisterFeedCursor();
}

WorkspaceChase::~WorkspaceChase() { ws_->ReleaseFeedCursor(feed_cursor_); }

Status WorkspaceChase::BudgetCheckpoint() {
  if (FaultFires(FaultSite::kEngineExhaust)) {
    return Status::ResourceExhausted("injected chase exhaustion");
  }
  // Cancellation is checked every call (not behind the tick gate): a
  // raced chase should die promptly once the other probe is decisive.
  if (options_->cancel != nullptr && options_->cancel->exhausted()) {
    return Status::ResourceExhausted("chase cancelled by racing probe");
  }
  if ((checkpoint_tick_++ & 63) != 0) return Status::OK();
  if (options_->deadline.has_value() &&
      std::chrono::steady_clock::now() >= *options_->deadline) {
    return Status::ResourceExhausted("chase deadline exceeded");
  }
  if (options_->max_bytes != UINT64_MAX &&
      ws_->MemoryUsage().Total() > options_->max_bytes) {
    return Status::ResourceExhausted("chase byte ceiling exceeded");
  }
  return Status::OK();
}

void WorkspaceChase::EnqueueFdDirty(RelId rel, std::uint32_t idx) {
  std::vector<std::uint8_t>& q = queued_[rel];
  if (q.size() <= idx) q.resize(ws_->size(rel), 0);
  if (q[idx]) return;
  q[idx] = 1;
  fd_dirty_.push_back(WorkspaceTupleRef{rel, idx});
}

void WorkspaceChase::RegisterRhsProjections(RelId rel, std::uint32_t idx) {
  for (std::uint32_t ind_id : inds_by_rhs_rel_[rel]) {
    ind_states_[ind_id].rhs_keys.insert(
        ws_->CanonicalProjection(rel, idx, inds_[ind_id].rhs));
  }
}

void WorkspaceChase::AdmitSlot(RelId rel, std::uint32_t idx) {
  RegisterRhsProjections(rel, idx);
  EnqueueFdDirty(rel, idx);
  if (admitted_[rel] <= idx) admitted_[rel] = idx + 1;
}

void WorkspaceChase::AdmitAppended() {
  for (RelId rel = 0; rel < ws_->scheme().size(); ++rel) {
    std::uint64_t end = ws_->EventCount(rel);
    if (admit_cursor_[rel] < ws_->FeedBase(rel)) {
      // Behind the compaction horizon (a forced TrimFeedTo outran us):
      // the feed delta is gone, but between Runs outside parties only
      // append, so scanning the unadmitted slot suffix recovers exactly
      // the lost events.
      std::uint32_t size = static_cast<std::uint32_t>(ws_->size(rel));
      for (std::uint32_t idx = admitted_[rel]; idx < size; ++idx) {
        AdmitSlot(rel, idx);
      }
    } else {
      for (std::uint64_t seq = admit_cursor_[rel]; seq < end; ++seq) {
        const WorkspaceEvent& ev = ws_->event(rel, seq);
        // The chase's own appends were admitted inline (ProbeInd) and its
        // own rewrites/kills are tracked by the dirty worklists; only
        // appends published by outside parties are news.
        if (ev.kind == WorkspaceEventKind::kAppend &&
            ev.idx >= admitted_[rel]) {
          AdmitSlot(rel, ev.idx);
        }
      }
    }
    admit_cursor_[rel] = end;
    ws_->AdvanceFeedCursor(feed_cursor_, rel, end);
  }
}

/// Probes one (canonical, alive) slot against one FD's persistent lhs-key
/// index, merging right-hand sides on a key hit.
Status WorkspaceChase::ProbeFd(std::uint32_t fd_id, RelId rel,
                               std::uint32_t idx) {
  const Fd& fd = fds_[fd_id];
  IdTuple key = ws_->CanonicalProjection(rel, idx, fd.lhs);
  FdIndexShard& index =
      fd_index_[fd_id][IdTupleHash{}(key) & (kFdIndexShards - 1)];
  auto [it, inserted] = index.try_emplace(std::move(key), idx);
  if (inserted || it->second == idx) return Status::OK();
  std::uint32_t rep = it->second;
  // The entry may be stale: the representative's key can have drifted
  // since insertion (its ids merged). A drifted rep was dirtied by the
  // merge and will re-index itself under its new key, so just take over.
  if (ws_->CanonicalProjection(rel, rep, fd.lhs) != it->first) {
    it->second = idx;
    return Status::OK();
  }
  const IdTuple& t = ws_->tuple(rel, idx);
  const IdTuple& rep_t = ws_->tuple(rel, rep);
  for (AttrId y : fd.rhs) {
    ValueId a = ws_->Canon(t[y]);
    ValueId b = ws_->Canon(rep_t[y]);
    if (a == b) continue;
    InternedWorkspace::MergeResult u = ws_->MergeValues(a, b);
    if (u.clash) {
      failed_ = true;
      return Status::OK();
    }
    ++fd_merges_;
    // Dirty every slot that stores the losing id — the delta the merge
    // actually touches — then hand its occurrence list to the winner.
    // This must happen *before* the budget check: a ResourceExhausted
    // return with the merge recorded but its slots neither dirtied nor
    // rerouted would leave the workspace unresumable (stale tuples no
    // worklist entry will ever revisit).
    for (const WorkspaceTupleRef& ref : ws_->occurrences(u.loser)) {
      EnqueueFdDirty(ref.rel, ref.idx);
    }
    ws_->RerouteOccurrences(u.loser, u.winner);
    if (++steps_ > options_->max_steps) {
      return Status::ResourceExhausted("chase step budget exhausted");
    }
  }
  return Status::OK();
}

/// Pops and fully processes the front dirty slot: re-canonicalize,
/// re-deduplicate, and re-probe it against every FD on its relation.
Status WorkspaceChase::DrainOneFdSlot() {
  // Checked per slot, *inside* the FD fixpoint: one huge round can no
  // longer blow past the deadline or the byte ceiling unobserved.
  // Checking before the pop keeps exhaustion trivially resumable.
  CCFP_RETURN_NOT_OK(BudgetCheckpoint());
  WorkspaceTupleRef ref = fd_dirty_.front();
  fd_dirty_.pop_front();
  queued_[ref.rel][ref.idx] = 0;
  if (!ws_->alive(ref.rel, ref.idx)) return Status::OK();
  InternedWorkspace::CanonOutcome c =
      ws_->CanonicalizeTuple(ref.rel, ref.idx);
  if (c == InternedWorkspace::CanonOutcome::kKilled) return Status::OK();
  if (c == InternedWorkspace::CanonOutcome::kRewritten) {
    RegisterRhsProjections(ref.rel, ref.idx);
    for (std::uint32_t ind_id : inds_by_lhs_rel_[ref.rel]) {
      ind_states_[ind_id].dirty.push_back(ref.idx);
    }
  }
  for (std::uint32_t fd_id : fds_by_rel_[ref.rel]) {
    Status st = ProbeFd(fd_id, ref.rel, ref.idx);
    if (!st.ok()) {
      // Budget tripped mid-slot: requeue so a later Run with a larger
      // budget re-probes this slot from its first FD (probes are
      // idempotent once their merge is in the union-find).
      EnqueueFdDirty(ref.rel, ref.idx);
      return st;
    }
    if (failed_) return Status::OK();
    if (!ws_->alive(ref.rel, ref.idx)) break;  // merged away by its probe
  }
  return Status::OK();
}

/// Drains the dirty worklist: re-canonicalize, re-deduplicate, and
/// re-probe each touched slot until the FD fixpoint is reached.
Status WorkspaceChase::DrainFdDirty() {
  while (!fd_dirty_.empty() && !failed_) {
    CCFP_RETURN_NOT_OK(DrainOneFdSlot());
  }
  return Status::OK();
}

Status WorkspaceChase::DrainFdDirtyParallel(TaskPool& pool) {
  while (!fd_dirty_.empty() && !failed_) {
    if (fd_dirty_.size() < kMinParallelFdRound || fds_.empty()) {
      // Too little work to amortize the snapshot + fork/join; drain one
      // slot and re-check (a merge cascade can regrow the queue past the
      // threshold, re-entering the parallel path mid-drain).
      CCFP_RETURN_NOT_OK(DrainOneFdSlot());
      continue;
    }
    CCFP_RETURN_NOT_OK(ParallelFdRound(pool));
  }
  return Status::OK();
}

/// One parallel FD round over the current queue snapshot.
///
/// Shape: (a) a *serial* pre-pass canonicalizes every queued slot — the
/// union-find is only ever mutated single-threaded; (b) workers compute
/// canonical lhs keys over the now-frozen union-find and speculatively
/// probe the per-(FD, shard) indexes they exclusively own; (c) if no probe
/// found merge work anywhere, the speculative inserts ARE the sequential
/// result (same keys, same within-shard round order, cross-shard keys
/// disjoint) and the round is done; otherwise every insert is rolled back
/// and the round replays through the ordinary sequential probe path, so
/// merge value-pairs — and hence the final database bytes — are identical
/// to the sequential engine. Stale index representatives also force the
/// replay: a takeover changes rep identity, which can reorder later merge
/// pairs.
Status WorkspaceChase::ParallelFdRound(TaskPool& pool) {
  // Snapshot the round; queued_ flags stay SET so merge-time re-enqueues
  // of still-pending round slots no-op, exactly as when the slots sat in
  // the deque.
  std::vector<WorkspaceTupleRef> round(fd_dirty_.begin(), fd_dirty_.end());
  fd_dirty_.clear();

  // --- Serial pre-pass: canonicalize, register projections, build the
  // live list. Nothing is probed yet, so a budget trip restores the whole
  // round (earlier canonicalizations are idempotent on resume).
  std::vector<WorkspaceTupleRef> live;
  live.reserve(round.size());
  std::vector<WorkspaceTupleRef> dead;
  for (const WorkspaceTupleRef& ref : round) {
    Status st = BudgetCheckpoint();
    if (!st.ok()) {
      fd_dirty_.assign(round.begin(), round.end());
      return st;
    }
    if (!ws_->alive(ref.rel, ref.idx)) {
      dead.push_back(ref);
      continue;
    }
    InternedWorkspace::CanonOutcome c =
        ws_->CanonicalizeTuple(ref.rel, ref.idx);
    if (c == InternedWorkspace::CanonOutcome::kKilled) {
      dead.push_back(ref);
      continue;
    }
    if (c == InternedWorkspace::CanonOutcome::kRewritten) {
      RegisterRhsProjections(ref.rel, ref.idx);
      for (std::uint32_t ind_id : inds_by_lhs_rel_[ref.rel]) {
        ind_states_[ind_id].dirty.push_back(ref.idx);
      }
    }
    live.push_back(ref);
  }
  // Dead slots leave the round exactly as a sequential pop would drop
  // them. Their flags were kept set until here so the exhausted-pre-pass
  // restore above stays flag/deque consistent.
  for (const WorkspaceTupleRef& ref : dead) queued_[ref.rel][ref.idx] = 0;
  if (live.empty()) return Status::OK();

  // --- Stage 1 (parallel, frozen reads): canonical lhs key + shard hash
  // per (live slot, FD). The pre-pass left every live tuple canonical and
  // no merge runs before the replay decision, so read-only union-find
  // traversal is race-free.
  struct Probe {
    IdTuple key;
    std::size_t hash = 0;
    std::uint32_t fd_id = 0;
    std::uint32_t live_idx = 0;  // index into `live` — the round order
  };
  std::vector<std::vector<Probe>> per_slot(live.size());
  pool.ParallelFor(live.size(), [&](std::size_t i) {
    const WorkspaceTupleRef& ref = live[i];
    for (std::uint32_t fd_id : fds_by_rel_[ref.rel]) {
      Probe p;
      p.fd_id = fd_id;
      p.live_idx = static_cast<std::uint32_t>(i);
      ws_->CanonicalProjectionReadOnly(ref.rel, ref.idx, fds_[fd_id].lhs,
                                       p.key);
      p.hash = IdTupleHash{}(p.key);
      per_slot[i].push_back(std::move(p));
    }
  });

  // Group probes by (FD, shard), preserving round order within each group.
  std::vector<std::vector<Probe*>> buckets(fds_.size() * kFdIndexShards);
  for (std::vector<Probe>& slot_probes : per_slot) {
    for (Probe& p : slot_probes) {
      buckets[p.fd_id * kFdIndexShards + (p.hash & (kFdIndexShards - 1))]
          .push_back(&p);
    }
  }
  std::vector<std::uint32_t> active;
  for (std::uint32_t b = 0; b < buckets.size(); ++b) {
    if (!buckets[b].empty()) active.push_back(b);
  }

  // --- Stage 2 (parallel, exclusive shard ownership): speculative
  // try_emplace in round order, with a per-task undo log. Any hit that
  // would merge — or a stale representative — flags the round for replay.
  std::atomic<bool> replay{false};
  std::vector<std::vector<Probe*>> undo(active.size());
  pool.ParallelFor(active.size(), [&](std::size_t a) {
    std::uint32_t b = active[a];
    std::uint32_t fd_id = b / kFdIndexShards;
    const Fd& fd = fds_[fd_id];
    FdIndexShard& index = fd_index_[fd_id][b % kFdIndexShards];
    for (Probe* p : buckets[b]) {
      if (replay.load(std::memory_order_relaxed)) return;
      const WorkspaceTupleRef& ref = live[p->live_idx];
      auto [it, inserted] = index.try_emplace(p->key, ref.idx);
      if (inserted) {
        undo[a].push_back(p);
        continue;
      }
      if (it->second == ref.idx) continue;
      IdTuple rep_key;
      ws_->CanonicalProjectionReadOnly(ref.rel, it->second, fd.lhs,
                                       rep_key);
      if (rep_key != it->first) {
        replay.store(true, std::memory_order_relaxed);
        return;
      }
      const IdTuple& t = ws_->tuple(ref.rel, ref.idx);
      const IdTuple& rep_t = ws_->tuple(ref.rel, it->second);
      for (AttrId y : fd.rhs) {
        if (ws_->CanonReadOnly(t[y]) != ws_->CanonReadOnly(rep_t[y])) {
          replay.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  });

  if (!replay.load(std::memory_order_acquire)) {
    // No merge anywhere: the speculative inserts are exactly what the
    // sequential probes would have left behind. Keep them; the round is
    // fully processed.
    for (const WorkspaceTupleRef& ref : live) queued_[ref.rel][ref.idx] = 0;
    return Status::OK();
  }
  // Roll every insert back — try_emplace was the only mutation, so this
  // restores the round-start index byte-for-byte — then replay the round
  // through the authoritative sequential path.
  for (std::size_t a = 0; a < active.size(); ++a) {
    std::uint32_t b = active[a];
    FdIndexShard& index = fd_index_[b / kFdIndexShards][b % kFdIndexShards];
    for (Probe* p : undo[a]) index.erase(p->key);
  }
  return ReplayRoundSequential(live);
}

/// Sequential replay of a parallel round that found merge work: the same
/// per-slot processing as DrainOneFdSlot, over the live list in round
/// order. The tail-restore bookkeeping reproduces the sequential queue
/// exactly — sequential resume order is [unprocessed round slots,
/// merge-added slots, interrupted slot], and merge-added slots are already
/// in the deque, so the tail goes to the *front* and the interrupted slot
/// (re-enqueued by the normal path) lands at the back.
Status WorkspaceChase::ReplayRoundSequential(
    const std::vector<WorkspaceTupleRef>& live) {
  for (std::size_t i = 0; i < live.size(); ++i) {
    Status st = BudgetCheckpoint();
    if (!st.ok()) {
      fd_dirty_.insert(fd_dirty_.begin(), live.begin() + i, live.end());
      return st;
    }
    WorkspaceTupleRef ref = live[i];
    queued_[ref.rel][ref.idx] = 0;
    if (!ws_->alive(ref.rel, ref.idx)) continue;
    // Usually kUnchanged (the pre-pass canonicalized this slot); an
    // earlier replayed slot's merge can have re-dirtied it, in which case
    // this is the sequential engine's own catch-up step.
    InternedWorkspace::CanonOutcome c =
        ws_->CanonicalizeTuple(ref.rel, ref.idx);
    if (c == InternedWorkspace::CanonOutcome::kKilled) continue;
    if (c == InternedWorkspace::CanonOutcome::kRewritten) {
      RegisterRhsProjections(ref.rel, ref.idx);
      for (std::uint32_t ind_id : inds_by_lhs_rel_[ref.rel]) {
        ind_states_[ind_id].dirty.push_back(ref.idx);
      }
    }
    for (std::uint32_t fd_id : fds_by_rel_[ref.rel]) {
      Status probe = ProbeFd(fd_id, ref.rel, ref.idx);
      if (!probe.ok()) {
        EnqueueFdDirty(ref.rel, ref.idx);
        fd_dirty_.insert(fd_dirty_.begin(), live.begin() + i + 1,
                         live.end());
        return probe;
      }
      if (failed_) {
        fd_dirty_.insert(fd_dirty_.begin(), live.begin() + i + 1,
                         live.end());
        return Status::OK();
      }
      if (!ws_->alive(ref.rel, ref.idx)) break;  // merged away by its probe
    }
  }
  return Status::OK();
}

/// Fires one IND on one lhs slot: if its canonical projection is not yet
/// present on the rhs, create the witness with fresh-null padding.
Status WorkspaceChase::ProbeInd(std::uint32_t ind_id, std::uint32_t idx,
                                bool* any) {
  const Ind& ind = inds_[ind_id];
  if (!ws_->alive(ind.lhs_rel, idx)) return Status::OK();
  CCFP_RETURN_NOT_OK(BudgetCheckpoint());
  IdTuple key = ws_->CanonicalProjection(ind.lhs_rel, idx, ind.lhs);
  auto [it, inserted] = ind_states_[ind_id].rhs_keys.insert(std::move(key));
  if (!inserted) return Status::OK();
  if (FaultFires(FaultSite::kArenaAppend)) {
    // The arena refused to grow. Un-register the key so a resumed Run
    // re-probes this slot and creates the witness then.
    ind_states_[ind_id].rhs_keys.erase(it);
    return Status::ResourceExhausted("injected arena allocation failure");
  }
  std::size_t arity = ws_->scheme().relation(ind.rhs_rel).arity();
  IdTuple fresh(arity, 0);
  // Fresh labels for every position, then overwrite the constrained ones
  // — byte-for-byte the naive engine's numbering, so all engines produce
  // identically-labeled databases on deterministic inputs.
  for (std::size_t a = 0; a < arity; ++a) {
    fresh[a] = ws_->InternFreshNull();
  }
  for (std::size_t i = 0; i < ind.width(); ++i) {
    fresh[ind.rhs[i]] = (*it)[i];
  }
  *any = true;
  if (ws_->Append(ind.rhs_rel, std::move(fresh))) {
    std::uint32_t new_idx =
        static_cast<std::uint32_t>(ws_->size(ind.rhs_rel)) - 1;
    AdmitSlot(ind.rhs_rel, new_idx);
    ++ind_tuples_;
    if (++steps_ > options_->max_steps ||
        ws_->TotalAliveTuples() > options_->max_tuples) {
      return Status::ResourceExhausted("chase budget exhausted");
    }
  }
  return Status::OK();
}

/// One pass over the INDs in declaration order — each IND only looks at
/// its delta: slots beyond its cursor plus slots whose canonical form
/// changed since its last pass.
Status WorkspaceChase::IndPass(bool* any) {
  for (std::uint32_t ind_id = 0; ind_id < inds_.size(); ++ind_id) {
    const Ind& ind = inds_[ind_id];
    IndState& is = ind_states_[ind_id];
    std::uint32_t end = static_cast<std::uint32_t>(ws_->size(ind.lhs_rel));
    std::vector<std::uint32_t> touched;
    touched.swap(is.dirty);
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    // Ascending over touched-then-new matches the naive full scan's tuple
    // order (touched slots all precede the cursor).
    for (std::size_t t = 0; t < touched.size(); ++t) {
      if (touched[t] >= is.cursor) continue;  // the range below covers it
      Status st = ProbeInd(ind_id, touched[t], any);
      if (!st.ok()) {
        // Budget tripped: put the unprocessed tail (and the current slot,
        // whose probe is idempotent) back on the dirty list so a later
        // Run with a larger budget resumes where this one stopped. The
        // cursor was not advanced, so the fresh range re-scans too.
        is.dirty.insert(is.dirty.end(), touched.begin() + t, touched.end());
        return st;
      }
    }
    for (std::uint32_t idx = is.cursor; idx < end; ++idx) {
      CCFP_RETURN_NOT_OK(ProbeInd(ind_id, idx, any));
    }
    is.cursor = end;
  }
  return Status::OK();
}

Result<WorkspaceChaseStats> WorkspaceChase::Run(const ChaseOptions& options) {
  options_ = &options;
  fd_merges_ = ind_tuples_ = steps_ = 0;
  // Executor selection: a caller-owned pool wins; otherwise threads > 1
  // (or 0 = hardware concurrency) spins up a transient pool for this Run.
  TaskPool* pool = options.pool;
  std::optional<TaskPool> local_pool;
  if (pool == nullptr && options.threads != 1) {
    unsigned n = options.threads != 0 ? options.threads
                                      : std::thread::hardware_concurrency();
    if (n > 1) {
      local_pool.emplace(n);
      pool = &*local_pool;
    }
  }
  AdmitAppended();
  while (!failed_) {
    Status drained = pool != nullptr && pool->threads() > 1
                         ? DrainFdDirtyParallel(*pool)
                         : DrainFdDirty();
    CCFP_RETURN_NOT_OK(drained);
    if (failed_) break;
    bool any = false;
    CCFP_RETURN_NOT_OK(IndPass(&any));
    if (!any) break;
  }
  // Everything published so far — including this Run's own appends,
  // rewrites, and kills — is incorporated; expose that via the cursor so
  // mid-chase verifiers know the chase is caught up with the feed, and
  // advance the registered cursor so compaction can reclaim the prefix.
  for (RelId rel = 0; rel < ws_->scheme().size(); ++rel) {
    admit_cursor_[rel] = ws_->EventCount(rel);
    ws_->AdvanceFeedCursor(feed_cursor_, rel, admit_cursor_[rel]);
  }
  WorkspaceChaseStats stats;
  stats.outcome = failed_ ? ChaseOutcome::kFailed : ChaseOutcome::kFixpoint;
  stats.fd_merges = fd_merges_;
  stats.ind_tuples = ind_tuples_;
  stats.steps = steps_;
  return stats;
}

}  // namespace ccfp
