#ifndef CCFP_CHASE_IND_CHASE_H_
#define CCFP_CHASE_IND_CHASE_H_

#include <cstdint>

#include "core/database.h"
#include "core/dependency.h"
#include "util/status.h"

namespace ccfp {

/// The Rule (*) construction from the proof of Theorem 3.1: a chase-like
/// procedure that, "instead of repeatedly introducing new undistinguished
/// variables ... always uses 0 when a 'new' value is needed". Because every
/// entry stays in {0, 1, ..., m}, the construction always terminates with a
/// finite database — this is the engine behind the proof that finite and
/// unrestricted implication coincide for INDs.

struct IndChaseOptions {
  /// Hard cap on generated tuples (the theoretical bound is
  /// sum over relations of (m+1)^arity, which can be astronomically large).
  std::uint64_t max_tuples = 1u << 22;
};

struct IndChaseResult {
  bool implied = false;
  /// The saturated database r_1, ..., r_n of the construction.
  Database db;
  std::uint64_t tuples_added = 0;

  explicit IndChaseResult(Database database) : db(std::move(database)) {}
};

/// Decides Sigma |= target by running the Theorem 3.1 construction:
/// initialize with the tuple p over the target's left-hand side relation
/// (p[A_i] = i, 0 elsewhere), saturate under Rule (*), and test whether the
/// right-hand side relation contains a tuple p' with p'[B_i] = i.
///
/// This is an independent second decision engine for IND implication, used
/// to cross-check IndImplication in tests. Warning: its running time is the
/// size of the generated database, which grows much faster than the BFS of
/// Corollary 3.2; prefer IndImplication for real queries.
Result<IndChaseResult> IndChaseDecide(SchemePtr scheme,
                                      const std::vector<Ind>& sigma,
                                      const Ind& target,
                                      const IndChaseOptions& options = {});

/// Saturates an arbitrary database under Rule (*) for `sigma` (each missing
/// right-hand-side tuple is created with Value::Int(0) padding). Returns
/// the number of tuples added, or ResourceExhausted on budget.
Result<std::uint64_t> IndChaseFixpoint(Database& db,
                                       const std::vector<Ind>& sigma,
                                       const IndChaseOptions& options = {});

}  // namespace ccfp

#endif  // CCFP_CHASE_IND_CHASE_H_
