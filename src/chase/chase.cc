#include "chase/chase.h"

#include <algorithm>
#include <unordered_map>

#include "chase/incremental.h"
#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

namespace {

/// Union-find over values (naive reference engine). Roots prefer
/// constants, so merging a labeled null with a constant resolves the null.
/// Merging two distinct constants is a chase failure.
class ValueUnion {
 public:
  /// Iterative find with full path compression. Deliberately not
  /// recursive: a merge chain built root-under-root (e.g. pairs unioned in
  /// decreasing null order) is only traversed at MapValues time, by which
  /// point it can be hundreds of thousands of links deep — recursion
  /// overflowed the stack there.
  Value Find(const Value& v) {
    auto it = parent_.find(v);
    if (it == parent_.end()) return v;
    Value root = it->second;
    for (auto next = parent_.find(root); next != parent_.end();
         next = parent_.find(root)) {
      root = next->second;
    }
    Value cur = v;
    while (!(cur == root)) {
      auto hop = parent_.find(cur);
      Value next = hop->second;
      if (!(next == root)) hop->second = root;
      cur = std::move(next);
    }
    return root;
  }

  enum class UnionOutcome : std::uint8_t {
    kMerged,        ///< two classes joined
    kAlreadyEqual,  ///< same class; nothing to do (e.g. duplicate FDs)
    kClash,         ///< two distinct constants
  };

  UnionOutcome Union(const Value& a, const Value& b) {
    Value ra = Find(a), rb = Find(b);
    if (ra == rb) return UnionOutcome::kAlreadyEqual;
    bool a_const = !ra.is_null(), b_const = !rb.is_null();
    if (a_const && b_const) return UnionOutcome::kClash;
    if (a_const) {
      parent_[rb] = ra;
    } else if (b_const) {
      parent_[ra] = rb;
    } else {
      // Both nulls: lower id wins (deterministic output).
      if (ra.null_id() < rb.null_id()) {
        parent_[rb] = ra;
      } else {
        parent_[ra] = rb;
      }
    }
    return UnionOutcome::kMerged;
  }

  bool empty() const { return parent_.empty(); }
  void Clear() { parent_.clear(); }

 private:
  std::unordered_map<Value, Value, ValueHash> parent_;
};

std::uint64_t MaxNullId(const Database& db) {
  std::uint64_t max_id = 0;
  for (RelId rel = 0; rel < db.scheme().size(); ++rel) {
    for (const Tuple& t : db.relation(rel).tuples()) {
      for (const Value& v : t) {
        if (v.is_null()) max_id = std::max(max_id, v.null_id());
      }
    }
  }
  return max_id;
}

}  // namespace

Chase::Chase(SchemePtr scheme, std::vector<Fd> fds, std::vector<Ind> inds)
    : scheme_(std::move(scheme)), fds_(std::move(fds)),
      inds_(std::move(inds)) {
  for (const Fd& fd : fds_) {
    Status st = Validate(*scheme_, fd);
    CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
  }
  for (const Ind& ind : inds_) {
    Status st = Validate(*scheme_, ind);
    CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
  }
}

Result<ChaseResult> Chase::Run(Database initial,
                               const ChaseOptions& options) const {
  if (options.engine == ChaseEngine::kIncremental) {
    return RunIncrementalChase(scheme_, fds_, inds_, std::move(initial),
                               options);
  }
  return RunNaive(std::move(initial), options);
}

Result<InternedChaseResult> Chase::RunInterned(
    Database initial, const ChaseOptions& options) const {
  if (options.engine == ChaseEngine::kIncremental) {
    return RunIncrementalChaseInterned(scheme_, fds_, inds_,
                                       std::move(initial), options);
  }
  CCFP_ASSIGN_OR_RETURN(ChaseResult naive,
                        RunNaive(std::move(initial), options));
  InternedChaseResult result(IdDatabase(naive.db));
  result.outcome = naive.outcome;
  result.fd_merges = naive.fd_merges;
  result.ind_tuples = naive.ind_tuples;
  result.steps = naive.steps;
  return result;
}

/// The original engine: restart-scan until no rule fires. Kept verbatim
/// (modulo the iterative ValueUnion) as the differential-testing reference
/// for the incremental engine.
Result<ChaseResult> Chase::RunNaive(Database initial,
                                    const ChaseOptions& options) const {
  ChaseResult result(std::move(initial));
  std::uint64_t next_null = MaxNullId(result.db) + 1;

  bool changed = true;
  while (changed) {
    changed = false;

    // --- FD (equality-generating) pass -----------------------------------
    // Repeats until no FD fires, because merges cascade.
    bool fd_changed = true;
    while (fd_changed) {
      fd_changed = false;
      ValueUnion uf;
      for (const Fd& fd : fds_) {
        const Relation& r = result.db.relation(fd.rel);
        std::unordered_map<Tuple, std::size_t, TupleHash> first_by_lhs;
        for (std::size_t i = 0; i < r.size(); ++i) {
          const Tuple& t = r.tuples()[i];
          Tuple key = ProjectTuple(t, fd.lhs);
          auto [it, inserted] = first_by_lhs.emplace(std::move(key), i);
          if (inserted) continue;
          const Tuple& t0 = r.tuples()[it->second];
          for (AttrId y : fd.rhs) {
            if (t0[y] == t[y]) continue;
            // fd_merges counts *actual* class merges, not observed raw
            // mismatches: a duplicate FD re-observing the same violation
            // must not count (or trigger) anything — the incremental
            // engine counts identically. Steps likewise: one step per
            // merge (plus one per generated tuple below), so both engines
            // consume the max_steps budget at the same rate and agree on
            // ResourceExhausted.
            switch (uf.Union(t0[y], t[y])) {
              case ValueUnion::UnionOutcome::kClash:
                result.outcome = ChaseOutcome::kFailed;
                return result;
              case ValueUnion::UnionOutcome::kAlreadyEqual:
                break;
              case ValueUnion::UnionOutcome::kMerged:
                ++result.fd_merges;
                fd_changed = true;
                if (++result.steps > options.max_steps) {
                  return Status::ResourceExhausted(
                      "chase step budget exhausted");
                }
                break;
            }
          }
        }
      }
      if (fd_changed) {
        for (RelId rel = 0; rel < scheme_->size(); ++rel) {
          result.db.relation(rel).MapValues(
              [&uf](const Value& v) { return uf.Find(v); });
        }
        changed = true;
      }
    }

    // --- IND (tuple-generating) pass --------------------------------------
    for (const Ind& ind : inds_) {
      const Relation& lhs = result.db.relation(ind.lhs_rel);
      auto rhs_proj = result.db.relation(ind.rhs_rel).ProjectSet(ind.rhs);
      // Collect missing tuples first: inserting while scanning the same
      // relation (self-INDs) would invalidate iteration.
      std::vector<Tuple> missing;
      for (const Tuple& t : lhs.tuples()) {
        Tuple p = ProjectTuple(t, ind.lhs);
        if (rhs_proj.count(p) == 0) {
          rhs_proj.insert(p);
          missing.push_back(std::move(p));
        }
      }
      for (Tuple& p : missing) {
        Tuple fresh(scheme_->relation(ind.rhs_rel).arity(), Value());
        for (std::size_t i = 0; i < fresh.size(); ++i) {
          fresh[i] = Value::Null(next_null++);
        }
        for (std::size_t i = 0; i < ind.width(); ++i) {
          fresh[ind.rhs[i]] = std::move(p[i]);
        }
        result.db.Insert(ind.rhs_rel, std::move(fresh));
        ++result.ind_tuples;
        changed = true;
        if (++result.steps > options.max_steps ||
            result.db.TotalTuples() > options.max_tuples) {
          return Status::ResourceExhausted("chase budget exhausted");
        }
      }
    }
  }

  result.outcome = ChaseOutcome::kFixpoint;
  return result;
}

Result<Database> MakeCanonicalSeed(SchemePtr scheme,
                                   const Dependency& target) {
  CCFP_RETURN_NOT_OK(Validate(*scheme, target));
  Database seed(scheme);
  std::uint64_t next_null = 1;

  switch (target.kind()) {
    case DependencyKind::kFd: {
      // Two tuples sharing nulls exactly on the FD's left-hand side.
      const Fd& fd = target.fd();
      std::size_t arity = scheme->relation(fd.rel).arity();
      Tuple t1(arity), t2(arity);
      for (AttrId a = 0; a < arity; ++a) {
        bool shared = std::find(fd.lhs.begin(), fd.lhs.end(), a) !=
                      fd.lhs.end();
        t1[a] = Value::Null(next_null++);
        t2[a] = shared ? t1[a] : Value::Null(next_null++);
      }
      seed.Insert(fd.rel, std::move(t1));
      seed.Insert(fd.rel, std::move(t2));
      break;
    }
    case DependencyKind::kInd: {
      const Ind& ind = target.ind();
      std::size_t arity = scheme->relation(ind.lhs_rel).arity();
      Tuple t(arity);
      for (AttrId a = 0; a < arity; ++a) t[a] = Value::Null(next_null++);
      seed.Insert(ind.lhs_rel, std::move(t));
      break;
    }
    case DependencyKind::kRd: {
      const Rd& rd = target.rd();
      std::size_t arity = scheme->relation(rd.rel).arity();
      Tuple t(arity);
      for (AttrId a = 0; a < arity; ++a) t[a] = Value::Null(next_null++);
      seed.Insert(rd.rel, std::move(t));
      break;
    }
    default:
      return Status::Unimplemented(
          "ChaseImplies supports FD, IND, and RD targets");
  }
  return seed;
}

Result<bool> ChaseImplies(SchemePtr scheme, const std::vector<Fd>& fds,
                          const std::vector<Ind>& inds,
                          const Dependency& target,
                          const ChaseOptions& options) {
  CCFP_ASSIGN_OR_RETURN(Database seed, MakeCanonicalSeed(scheme, target));
  Chase chase(scheme, fds, inds);
  CCFP_ASSIGN_OR_RETURN(InternedChaseResult result,
                        chase.RunInterned(std::move(seed), options));
  if (result.outcome == ChaseOutcome::kFailed) {
    // Cannot happen from an all-null seed (no constants to clash); if a
    // caller seeds constants via Run directly they handle failure there.
    return Status::Internal("chase failed from an all-null seed");
  }
  // The fixpoint is a universal model of (Sigma, seed): the target holds in
  // it iff Sigma implies the target. The fixpoint is already interned, so
  // the check is pure integer probing.
  return result.db.Satisfies(target);
}

Result<ChaseImplication> ChaseImplies(SchemePtr scheme,
                                      const std::vector<Fd>& fds,
                                      const std::vector<Ind>& inds,
                                      const Dependency& target,
                                      const Budget& budget,
                                      ChaseEngine engine) {
  CCFP_ASSIGN_OR_RETURN(Database seed, MakeCanonicalSeed(scheme, target));
  Chase chase(scheme, fds, inds);
  ChaseOptions options = ChaseOptions::FromBudget(budget, engine);
  Result<InternedChaseResult> run =
      chase.RunInterned(std::move(seed), options);
  ChaseImplication out;
  if (!run.ok()) {
    if (run.status().code() != StatusCode::kResourceExhausted) {
      return run.status();
    }
    // Budget exhaustion is the kUnknown verdict, not an error. The
    // engine's counters are lost on the error path, so charge the full
    // allowance on both metered axes (the convention every solver stage
    // follows: exhaustion consumed the whole slice, as an upper bound).
    out.used.steps = budget.steps;
    out.used.tuples = budget.tuples;
    return out;
  }
  if (run->outcome == ChaseOutcome::kFailed) {
    return Status::Internal("chase failed from an all-null seed");
  }
  out.fd_merges = run->fd_merges;
  out.ind_tuples = run->ind_tuples;
  out.steps = run->steps;
  out.used.steps = run->steps;
  out.used.tuples = run->ind_tuples;
  if (run->db.Satisfies(target)) {
    out.verdict = ImplicationVerdict::kImplied;
    return out;
  }
  // The fixpoint refutes the target; re-check it against sigma in
  // id-space before handing it out as evidence (a fixpoint violating its
  // own sigma would be an engine bug, not a counterexample).
  for (const Fd& fd : fds) {
    if (!run->db.Satisfies(fd)) {
      return Status::Internal("chase fixpoint violates a sigma FD");
    }
  }
  for (const Ind& ind : inds) {
    if (!run->db.Satisfies(ind)) {
      return Status::Internal("chase fixpoint violates a sigma IND");
    }
  }
  out.verdict = ImplicationVerdict::kNotImplied;
  out.counterexample = run->db.Materialize();
  return out;
}

}  // namespace ccfp
