#ifndef CCFP_SERVICE_SHARED_CORE_H_
#define CCFP_SERVICE_SHARED_CORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/database.h"
#include "core/dependency.h"
#include "core/schema.h"
#include "core/workspace.h"
#include "mine/discovery.h"
#include "search/bounded.h"
#include "util/status.h"
#include "verify/witness_cache.h"

namespace ccfp {

/// The immutable, reference-counted substrate every session over one
/// (scheme, sigma [, warm data]) triple shares — the expensive capital a
/// solver session used to rebuild privately on every construction:
///
///   * a *sealed* base workspace: the value interner frozen behind a
///     shared table (core/intern.h), every warm tuple interned, and every
///     projection partition the warm-up touched compiled — a session
///     forks it for the price of copying index vectors, and the fork's
///     copy-on-write interner extends locally without ever duplicating
///     (or re-hashing) the shared value table;
///   * a thread-safe WitnessCache over sigma (verify/witness_cache.h),
///     so one session's verified refutation answers its siblings'
///     probes — opt-in per service, because shared replay makes evidence
///     history-dependent;
///   * a thread-safe BoundedSearchWorkspace (search/bounded.h), so the
///     Nth session's refutation searches compile zero key tables.
///
/// A core is deeply immutable after Build (the cache and search tables
/// mutate internally but are safe for concurrent use), so the service
/// hands out `shared_ptr<const SolverCore>` with no further locking. The
/// acceptance proof that sharing works is in the counters: a forked
/// workspace inherits the base's Stats, so a session's re-interning and
/// partition compilation read as *deltas over base_stats()* — zero for a
/// session that only touches warm state.
class SolverCore {
 public:
  /// How Build warms the base workspace before sealing it.
  struct WarmupOptions {
    /// Run the mining sweeps over the warm data so every candidate
    /// projection partition (FD lattice up to `fd.max_lhs`, IND columns,
    /// RD pairs) is compiled into the shared base. Ignored without warm
    /// data. Mining sessions forked from a pre-mined core re-mine from
    /// cached partitions alone.
    bool premine = true;
    FdMiningOptions fd;
    IndMiningOptions ind;
  };

  /// Validates sigma, interns `warm` (when provided), compiles the
  /// partitions sigma verification and (optionally) mining will touch,
  /// and seals the result. InvalidArgument on a sigma member that does
  /// not fit the scheme.
  static Result<std::shared_ptr<const SolverCore>> Build(
      SchemePtr scheme, std::vector<Dependency> sigma, const Database* warm,
      const WarmupOptions& warmup);
  /// Build with default warm-up (premine on).
  static Result<std::shared_ptr<const SolverCore>> Build(
      SchemePtr scheme, std::vector<Dependency> sigma,
      const Database* warm = nullptr);

  /// Stable identity of the substrate: scheme + sigma + warm data,
  /// canonically rendered and hashed. Two Build calls with equal inputs
  /// collide here — the service's dedup key.
  static std::uint64_t Identity(const DatabaseScheme& scheme,
                                const std::vector<Dependency>& sigma,
                                const Database* warm = nullptr);

  const DatabaseScheme& scheme() const { return *scheme_; }
  const SchemePtr& scheme_ptr() const { return scheme_; }
  const std::vector<Dependency>& sigma() const { return sigma_; }
  /// SchemeFingerprint(scheme) — the service's shard routing key.
  std::uint64_t fingerprint() const { return fingerprint_; }
  std::uint64_t identity() const { return identity_; }

  /// The sealed base workspace (frozen interner, compiled partitions).
  const InternedWorkspace& base() const { return base_; }
  /// Substrate counters at seal time — the baseline session deltas are
  /// measured against.
  const InternedWorkspace::Stats& base_stats() const { return base_stats_; }

  /// A cheap mutable overlay: shares the frozen interner table, copies
  /// the (small) index state, inherits the compiled partitions. See
  /// InternedWorkspace::Fork for what is reset (journal, cursors, chain
  /// identity).
  InternedWorkspace ForkWorkspace() const { return base_.Fork(); }

  /// Shared, thread-safe caches (mutable through a const core: both are
  /// internally synchronized and observationally transparent).
  WitnessCache& witness_cache() const { return witness_cache_; }
  BoundedSearchWorkspace& search_tables() const { return search_tables_; }

 private:
  SolverCore(SchemePtr scheme, std::vector<Dependency> sigma);

  SchemePtr scheme_;
  std::vector<Dependency> sigma_;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t identity_ = 0;
  InternedWorkspace base_;
  InternedWorkspace::Stats base_stats_;
  mutable WitnessCache witness_cache_;
  mutable BoundedSearchWorkspace search_tables_;
};

}  // namespace ccfp

#endif  // CCFP_SERVICE_SHARED_CORE_H_
