#include "service/service.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/strings.h"

namespace ccfp {

namespace {

WitnessCache::Stats SumWitness(const WitnessCache::Stats& a,
                               const WitnessCache::Stats& b) {
  WitnessCache::Stats s = a;
  s.admitted += b.admitted;
  s.rejected += b.rejected;
  s.evicted += b.evicted;
  s.probes += b.probes;
  s.hits += b.hits;
  s.misses += b.misses;
  s.watcher_resets += b.watcher_resets;
  s.byte_evictions += b.byte_evictions;
  return s;
}

}  // namespace

/// Bounded in-flight op count: admission is an atomic increment checked
/// against the ceiling; over-admission immediately backs out. No queueing
/// — the caller gets ResourceExhausted and decides whether to retry.
class SolverService::InflightGuard {
 public:
  InflightGuard(std::atomic<std::size_t>& count, std::size_t limit)
      : count_(count) {
    admitted_ = count_.fetch_add(1, std::memory_order_relaxed) < limit;
    if (!admitted_) count_.fetch_sub(1, std::memory_order_relaxed);
  }
  ~InflightGuard() {
    if (admitted_) count_.fetch_sub(1, std::memory_order_relaxed);
  }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;
  bool admitted() const { return admitted_; }

 private:
  std::atomic<std::size_t>& count_;
  bool admitted_ = false;
};

SolverService::SolverService() : SolverService(Options()) {}

SolverService::SolverService(Options options) : options_(std::move(options)) {
  unsigned threads = options_.threads != 0
                         ? options_.threads
                         : std::max(1u, std::thread::hardware_concurrency());
  pool_ = std::make_unique<TaskPool>(threads);
  // Two service processes must never interleave one session's chain.
  options_.chain_policy.exclusive = true;
  std::size_t shards = std::max<std::size_t>(1, options_.shards);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  stats_.pool_threads = threads;
}

SolverService::~SolverService() = default;

std::size_t SolverService::ShardOf(const DatabaseScheme& scheme) const {
  return SchemeFingerprint(scheme) % shards_.size();
}

std::string SolverService::ChainPrefix(SessionId id) const {
  return StrCat(options_.spill_dir, "/session_", id);
}

Result<std::shared_ptr<const SolverCore>> SolverService::AcquireCore(
    SchemePtr scheme, std::vector<Dependency> sigma, const Database* warm) {
  std::uint64_t identity = SolverCore::Identity(*scheme, sigma, warm);
  {
    std::lock_guard<std::mutex> lock(cores_mu_);
    auto it = cores_.find(identity);
    if (it != cores_.end()) {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.core_reuses;
      return it->second;
    }
  }
  // Build outside the registry lock (warm-up can be expensive); a racing
  // duplicate build is wasted work, not a correctness problem — first
  // insert wins and both callers share it.
  CCFP_ASSIGN_OR_RETURN(std::shared_ptr<const SolverCore> core,
                        SolverCore::Build(std::move(scheme), std::move(sigma),
                                          warm));
  std::lock_guard<std::mutex> lock(cores_mu_);
  auto [it, inserted] = cores_.emplace(identity, core);
  if (!inserted) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.core_reuses;
  }
  return it->second;
}

Result<SolverService::SessionId> SolverService::Admit(
    std::shared_ptr<Session> session) {
  if (resident_.fetch_add(1, std::memory_order_relaxed) >=
      options_.max_sessions) {
    resident_.fetch_sub(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected_capacity;
    return Status::ResourceExhausted(
        StrCat("session capacity (", options_.max_sessions,
               ") reached; close or evict a session first"));
  }
  session->meter = std::make_unique<SharedBudgetMeter>(
      Budget::Unlimited(), options_.session_step_ceiling);
  std::size_t shard_index = session->core->fingerprint() % shards_.size();
  Shard& shard = *shards_[shard_index];
  SessionId id;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    id = shard.next++ * shards_.size() + shard_index;
    shard.sessions.emplace(id, std::move(session));
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.sessions_opened;
  return id;
}

Result<std::shared_ptr<SolverService::Session>> SolverService::Find(
    SessionId id) const {
  const Shard& shard = *shards_[id % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) {
    return Status::NotFound(StrCat("no session ", id));
  }
  return it->second;
}

void SolverService::ProvisionSolver(Session& s) {
  SolveOptions o = options_.solve;
  o.shared_search_tables = &s.core->search_tables();
  o.pool = options_.race_mixed_route ? pool_.get() : nullptr;
  if (options_.share_witness_cache) {
    o.shared_witness_cache = &s.core->witness_cache();
  } else {
    // A private cache per session keeps evidence bit-reproducible; owning
    // it here (instead of inside the solver) surfaces its counters in
    // SessionStats and lets eviction drop it with the solver.
    s.private_cache = std::make_unique<WitnessCache>(
        s.core->scheme_ptr(), s.core->sigma(),
        o.use_witness_cache ? std::size_t{8} : std::size_t{0});
    o.shared_witness_cache = s.private_cache.get();
  }
  s.solver = std::make_unique<ImplicationSolver>(s.core->scheme_ptr(),
                                                 s.core->sigma(), o);
}

Result<SolverService::SessionId> SolverService::OpenSolve(
    SchemePtr scheme, std::vector<Dependency> sigma) {
  CCFP_ASSIGN_OR_RETURN(std::shared_ptr<const SolverCore> core,
                        AcquireCore(std::move(scheme), std::move(sigma),
                                    nullptr));
  auto session = std::make_shared<Session>();
  session->kind = SessionKind::kSolve;
  session->stats.kind = SessionKind::kSolve;
  session->core = std::move(core);
  ProvisionSolver(*session);
  return Admit(std::move(session));
}

Result<SolverService::SessionId> SolverService::OpenMine(
    SchemePtr scheme, const Database& data) {
  CCFP_ASSIGN_OR_RETURN(std::shared_ptr<const SolverCore> core,
                        AcquireCore(std::move(scheme), {}, &data));
  auto session = std::make_shared<Session>();
  session->kind = SessionKind::kMine;
  session->stats.kind = SessionKind::kMine;
  session->core = std::move(core);
  session->mine_ws =
      std::make_unique<InternedWorkspace>(session->core->ForkWorkspace());
  return Admit(std::move(session));
}

Result<SolverService::SessionId> SolverService::OpenArmstrong(
    SchemePtr scheme, std::vector<Fd> fds, std::vector<Ind> inds,
    ArmstrongBuildOptions build) {
  std::vector<Dependency> sigma;
  sigma.reserve(fds.size() + inds.size());
  for (const Fd& fd : fds) sigma.emplace_back(fd);
  for (const Ind& ind : inds) sigma.emplace_back(ind);
  CCFP_ASSIGN_OR_RETURN(std::shared_ptr<const SolverCore> core,
                        AcquireCore(scheme, std::move(sigma), nullptr));
  auto session = std::make_shared<Session>();
  session->kind = SessionKind::kArmstrong;
  session->stats.kind = SessionKind::kArmstrong;
  session->core = std::move(core);
  session->fds = std::move(fds);
  session->inds = std::move(inds);
  session->build = build;
  // The session owns its oracle (the builder only borrows it).
  session->oracle =
      std::make_unique<ChaseOracle>(scheme, session->build.chase);
  session->armstrong = std::make_unique<ArmstrongSession>(
      std::move(scheme), session->fds, session->inds, session->oracle.get(),
      session->build);
  return Admit(std::move(session));
}

void SolverService::ChargeLocked(Session& s, std::uint64_t steps) {
  ++s.stats.ops;
  if (!s.meter->Charge(steps == 0 ? 1 : steps)) {
    s.stats.budget_exhausted = true;
  }
  s.stats.steps_used = s.meter->used();
}

void SolverService::FoldLiveStatsLocked(Session& s) const {
  // Witness counters do not survive a dropped private cache; accumulate.
  if (s.private_cache != nullptr) {
    s.stats.witness = SumWitness(s.stats.witness, s.private_cache->stats());
  }
  // Substrate deltas DO survive (workspace stats ride the snapshot), so
  // they are overwritten, not summed.
  if (s.mine_ws != nullptr) {
    s.stats.values_interned = s.mine_ws->stats().values_interned -
                              s.core->base_stats().values_interned;
    s.stats.partitions_built = s.mine_ws->stats().partitions_built -
                               s.core->base_stats().partitions_built;
  }
  if (s.armstrong != nullptr) {
    s.stats.values_interned = s.armstrong->workspace_stats().values_interned;
    s.stats.partitions_built =
        s.armstrong->workspace_stats().partitions_built;
  }
}

SolverService::SessionStats SolverService::SnapshotStatsLocked(
    Session& s) const {
  SessionStats out = s.stats;
  out.evicted = s.evicted;
  if (options_.share_witness_cache && s.kind == SessionKind::kSolve) {
    out.witness = s.core->witness_cache().stats();
  } else if (s.private_cache != nullptr) {
    out.witness = SumWitness(out.witness, s.private_cache->stats());
  }
  if (s.mine_ws != nullptr) {
    out.values_interned = s.mine_ws->stats().values_interned -
                          s.core->base_stats().values_interned;
    out.partitions_built = s.mine_ws->stats().partitions_built -
                           s.core->base_stats().partitions_built;
  }
  if (s.armstrong != nullptr) {
    out.values_interned = s.armstrong->workspace_stats().values_interned;
    out.partitions_built = s.armstrong->workspace_stats().partitions_built;
  }
  return out;
}

Status SolverService::ReviveLocked(Session& s) {
  switch (s.kind) {
    case SessionKind::kSolve:
      // Pure capital: rebuild the engines over the shared core. The
      // private witness cache restarts cold (its counters were folded).
      ProvisionSolver(s);
      break;
    case SessionKind::kMine: {
      CCFP_ASSIGN_OR_RETURN(
          RestoredChain chain,
          LoadSnapshotChain(s.core->scheme_ptr(), s.chain->prefix()));
      s.mine_ws =
          std::make_unique<InternedWorkspace>(std::move(chain.restored.ws));
      s.chain->Adopt(chain);
      break;
    }
    case SessionKind::kArmstrong: {
      CCFP_ASSIGN_OR_RETURN(
          RestoredChain chain,
          LoadSnapshotChain(s.core->scheme_ptr(), s.chain->prefix()));
      CCFP_ASSIGN_OR_RETURN(
          SessionClassificationRecord record,
          DeserializeSessionRecord(s.core->scheme(), chain.restored.aux));
      s.chain->Adopt(chain);
      s.oracle = std::make_unique<ChaseOracle>(s.core->scheme_ptr(),
                                               s.build.chase);
      // Warm start without replay: workspace + classification adopted,
      // zero oracle calls, zero re-interning.
      s.armstrong = std::make_unique<ArmstrongSession>(
          std::move(chain.restored.ws), std::move(record), s.fds, s.inds,
          s.oracle.get(), s.build);
      break;
    }
  }
  s.evicted = false;
  ++s.stats.revivals;
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.sessions_revived;
  return Status::OK();
}

Result<Verdict> SolverService::Solve(SessionId id, const Dependency& target,
                                     const Budget& budget) {
  CCFP_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, Find(id));
  if (s->kind != SessionKind::kSolve) {
    return Status::FailedPrecondition(
        StrCat("session ", id, " is not a solve session"));
  }
  InflightGuard guard(inflight_, options_.max_inflight);
  if (!guard.admitted()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected_inflight;
    return Status::ResourceExhausted(
        StrCat("in-flight op ceiling (", options_.max_inflight,
               ") reached; retry"));
  }
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->evicted) CCFP_RETURN_NOT_OK(ReviveLocked(*s));
  if (s->meter->exhausted()) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.rejected_budget;
    return Status::ResourceExhausted(
        StrCat("session ", id, " exhausted its lifetime step ceiling"));
  }
  CCFP_ASSIGN_OR_RETURN(Verdict v, s->solver->Solve(target, budget));
  ChargeLocked(*s, v.used.steps);
  return v;
}

Status SolverService::Append(SessionId id, const Database& delta) {
  CCFP_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, Find(id));
  if (s->kind != SessionKind::kMine) {
    return Status::FailedPrecondition(
        StrCat("session ", id, " is not a mining session"));
  }
  InflightGuard guard(inflight_, options_.max_inflight);
  if (!guard.admitted()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected_inflight;
    return Status::ResourceExhausted("in-flight op ceiling reached; retry");
  }
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->evicted) CCFP_RETURN_NOT_OK(ReviveLocked(*s));
  if (s->meter->exhausted()) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.rejected_budget;
    return Status::ResourceExhausted(
        StrCat("session ", id, " exhausted its lifetime step ceiling"));
  }
  std::uint64_t before = s->mine_ws->stats().tuples_appended;
  s->mine_ws->AppendDatabase(delta);
  ChargeLocked(*s, s->mine_ws->stats().tuples_appended - before);
  return Status::OK();
}

Result<std::vector<Fd>> SolverService::MineSessionFds(
    SessionId id, RelId rel, const FdMiningOptions& fd) {
  CCFP_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, Find(id));
  if (s->kind != SessionKind::kMine) {
    return Status::FailedPrecondition(
        StrCat("session ", id, " is not a mining session"));
  }
  InflightGuard guard(inflight_, options_.max_inflight);
  if (!guard.admitted()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected_inflight;
    return Status::ResourceExhausted("in-flight op ceiling reached; retry");
  }
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->evicted) CCFP_RETURN_NOT_OK(ReviveLocked(*s));
  if (rel >= s->core->scheme().size()) {
    return Status::InvalidArgument(StrCat("no relation ", rel));
  }
  std::vector<Fd> out = MineFds(*s->mine_ws, rel, fd);
  ChargeLocked(*s, s->mine_ws->TotalAliveTuples());
  return out;
}

Result<std::vector<Ind>> SolverService::MineSessionInds(
    SessionId id, const IndMiningOptions& ind) {
  CCFP_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, Find(id));
  if (s->kind != SessionKind::kMine) {
    return Status::FailedPrecondition(
        StrCat("session ", id, " is not a mining session"));
  }
  InflightGuard guard(inflight_, options_.max_inflight);
  if (!guard.admitted()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected_inflight;
    return Status::ResourceExhausted("in-flight op ceiling reached; retry");
  }
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->evicted) CCFP_RETURN_NOT_OK(ReviveLocked(*s));
  std::vector<Ind> out = MineInds(*s->mine_ws, ind);
  ChargeLocked(*s, s->mine_ws->TotalAliveTuples());
  return out;
}

Result<std::vector<Rd>> SolverService::MineSessionRds(SessionId id) {
  CCFP_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, Find(id));
  if (s->kind != SessionKind::kMine) {
    return Status::FailedPrecondition(
        StrCat("session ", id, " is not a mining session"));
  }
  InflightGuard guard(inflight_, options_.max_inflight);
  if (!guard.admitted()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected_inflight;
    return Status::ResourceExhausted("in-flight op ceiling reached; retry");
  }
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->evicted) CCFP_RETURN_NOT_OK(ReviveLocked(*s));
  std::vector<Rd> out = MineRds(*s->mine_ws);
  ChargeLocked(*s, s->mine_ws->TotalAliveTuples());
  return out;
}

Status SolverService::Extend(SessionId id,
                             const std::vector<Dependency>& delta) {
  CCFP_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, Find(id));
  if (s->kind != SessionKind::kArmstrong) {
    return Status::FailedPrecondition(
        StrCat("session ", id, " is not an Armstrong session"));
  }
  InflightGuard guard(inflight_, options_.max_inflight);
  if (!guard.admitted()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected_inflight;
    return Status::ResourceExhausted("in-flight op ceiling reached; retry");
  }
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->evicted) CCFP_RETURN_NOT_OK(ReviveLocked(*s));
  if (s->meter->exhausted()) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.rejected_budget;
    return Status::ResourceExhausted(
        StrCat("session ", id, " exhausted its lifetime step ceiling"));
  }
  std::uint64_t before = s->armstrong->workspace_stats().tuples_appended;
  CCFP_RETURN_NOT_OK(s->armstrong->Extend(delta));
  ChargeLocked(*s, delta.size() + s->armstrong->workspace_stats().tuples_appended -
                       before);
  return Status::OK();
}

Result<Database> SolverService::ArmstrongDatabase(SessionId id) {
  CCFP_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, Find(id));
  if (s->kind != SessionKind::kArmstrong) {
    return Status::FailedPrecondition(
        StrCat("session ", id, " is not an Armstrong session"));
  }
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->evicted) CCFP_RETURN_NOT_OK(ReviveLocked(*s));
  return s->armstrong->Snapshot();
}

Status SolverService::Evict(SessionId id) {
  CCFP_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, Find(id));
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->evicted) return Status::OK();
  bool needs_spill = s->kind != SessionKind::kSolve;
  if (needs_spill) {
    if (options_.spill_dir.empty()) {
      return Status::FailedPrecondition(
          "session eviction needs Options::spill_dir");
    }
    if (s->chain == nullptr) {
      s->chain = std::make_unique<SnapshotChainWriter>(ChainPrefix(id),
                                                       options_.chain_policy);
    }
  }
  switch (s->kind) {
    case SessionKind::kSolve:
      break;  // pure capital; nothing to persist
    case SessionKind::kMine:
      CCFP_RETURN_NOT_OK(s->chain->Save(*s->mine_ws));
      break;
    case SessionKind::kArmstrong: {
      // Persist the workspace AND the universe classification so revival
      // replays zero oracle calls.
      SessionClassificationRecord record;
      record.universe = s->armstrong->universe();
      const std::vector<Dependency>& expected = s->armstrong->expected();
      record.expected.reserve(record.universe.size());
      for (const Dependency& member : record.universe) {
        record.expected.push_back(
            std::find(expected.begin(), expected.end(), member) !=
            expected.end());
      }
      CCFP_RETURN_NOT_OK(s->chain->Save(s->armstrong->workspace(), {},
                                        SerializeSessionRecord(record)));
      break;
    }
  }
  FoldLiveStatsLocked(*s);
  s->solver.reset();
  s->private_cache.reset();
  s->mine_ws.reset();
  s->armstrong.reset();
  s->oracle.reset();
  s->evicted = true;
  ++s->stats.evictions;
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  ++stats_.sessions_evicted;
  return Status::OK();
}

Status SolverService::Close(SessionId id) {
  Shard& shard = *shards_[id % shards_.size()];
  std::shared_ptr<Session> s;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.sessions.find(id);
    if (it == shard.sessions.end()) {
      return Status::NotFound(StrCat("no session ", id));
    }
    s = std::move(it->second);
    shard.sessions.erase(it);
  }
  resident_.fetch_sub(1, std::memory_order_relaxed);
  // An in-flight op on another thread still holds its shared_ptr; the
  // session object dies when the last op returns.
  return Status::OK();
}

Result<SolverService::SessionStats> SolverService::Stats(
    SessionId id) const {
  CCFP_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, Find(id));
  std::lock_guard<std::mutex> lock(s->mu);
  return SnapshotStatsLocked(*s);
}

SolverService::ServiceStats SolverService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  {
    std::lock_guard<std::mutex> lock(cores_mu_);
    out.cores = cores_.size();
  }
  out.sessions_resident = resident_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace ccfp
