#include "service/shared_core.h"

#include <string>
#include <utility>

#include "core/snapshot.h"
#include "util/strings.h"

namespace ccfp {

namespace {

/// Canonical rendering of a core's inputs — what Identity hashes. Sigma
/// order matters deliberately: the solver's stage pipeline and the
/// witness cache verify sigma in order, so differently-ordered sigmas are
/// different (if logically equal) substrates.
std::string IdentityString(const DatabaseScheme& scheme,
                           const std::vector<Dependency>& sigma,
                           const Database* warm) {
  std::string s = scheme.ToString();
  s += '\n';
  for (const Dependency& dep : sigma) {
    s += dep.ToString(scheme);
    s += '\n';
  }
  if (warm != nullptr) {
    s += warm->ToString();
  }
  return s;
}

}  // namespace

SolverCore::SolverCore(SchemePtr scheme, std::vector<Dependency> sigma)
    : scheme_(scheme),
      sigma_(std::move(sigma)),
      fingerprint_(SchemeFingerprint(*scheme)),
      base_(scheme),
      witness_cache_(scheme, sigma_) {}

std::uint64_t SolverCore::Identity(const DatabaseScheme& scheme,
                                   const std::vector<Dependency>& sigma,
                                   const Database* warm) {
  return Fnv1a64(IdentityString(scheme, sigma, warm));
}

Result<std::shared_ptr<const SolverCore>> SolverCore::Build(
    SchemePtr scheme, std::vector<Dependency> sigma, const Database* warm) {
  return Build(std::move(scheme), std::move(sigma), warm, WarmupOptions());
}

Result<std::shared_ptr<const SolverCore>> SolverCore::Build(
    SchemePtr scheme, std::vector<Dependency> sigma, const Database* warm,
    const WarmupOptions& warmup) {
  for (const Dependency& dep : sigma) {
    CCFP_RETURN_NOT_OK(Validate(*scheme, dep));
  }
  // make_shared needs a public constructor; the core is handed out const,
  // so a private-ctor new is the simpler seam.
  std::shared_ptr<SolverCore> core(
      new SolverCore(std::move(scheme), std::move(sigma)));
  core->identity_ = Identity(*core->scheme_, core->sigma_, warm);
  if (warm != nullptr) {
    core->base_.AppendDatabase(*warm);
  }
  // Compile the partitions sigma verification touches (and warm the
  // verdicts themselves — Satisfies caches by partition, so every session
  // fork inherits compiled groups, not just interned values).
  for (const Dependency& dep : core->sigma_) {
    core->base_.Satisfies(dep);
  }
  if (warm != nullptr && warmup.premine) {
    // One sweep per fragment compiles every candidate projection the
    // miners enumerate; forked sessions re-mining the warm data build
    // zero partitions.
    for (RelId rel = 0; rel < core->scheme_->size(); ++rel) {
      (void)MineFds(core->base_, rel, warmup.fd);
    }
    (void)MineInds(core->base_, warmup.ind);
    (void)MineRds(core->base_);
  }
  core->base_.SealSharedBase();
  core->base_stats_ = core->base_.stats();
  return std::shared_ptr<const SolverCore>(std::move(core));
}

}  // namespace ccfp
