#ifndef CCFP_SERVICE_SERVICE_H_
#define CCFP_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "armstrong/builder.h"
#include "axiom/oracle.h"
#include "core/database.h"
#include "core/dependency.h"
#include "core/schema.h"
#include "core/snapshot.h"
#include "mine/discovery.h"
#include "service/shared_core.h"
#include "solve/solver.h"
#include "util/budget.h"
#include "util/status.h"
#include "util/task_pool.h"

namespace ccfp {

/// A multi-session front end over the solving engines: many concurrent
/// implication, mining, and Armstrong sessions served from shared
/// immutable cores (service/shared_core.h) on one work-stealing TaskPool.
///
/// ## Architecture
///
///   * **Cores** are deduplicated by SolverCore::Identity — the Nth
///     session over a (scheme, sigma, warm data) triple adopts the
///     existing core and pays zero re-interning and zero partition
///     compilation (provable from SessionStats deltas).
///   * **Sessions** live in shards keyed by the core's scheme
///     fingerprint; a SessionId encodes its shard (`id % shard_count`),
///     so routing a call touches one shard mutex, never a global one.
///     Ops on distinct sessions run concurrently (callers may invoke the
///     service from many threads); ops on one session serialize on its
///     own mutex.
///   * **Budgets**: each session carries a lifetime step ceiling through
///     a SharedBudgetMeter. Every op's measured consumption is charged
///     after the fact; once the meter trips, further ops are refused with
///     ResourceExhausted — the op that crossed the line still returns its
///     (correct) verdict. Exhaustion is an admission outcome, never a
///     wrong answer.
///   * **Admission control**: a bounded in-flight op count and a bounded
///     resident session count; both overflows are ResourceExhausted with
///     a reason, never queueing and never degraded results.
///   * **Eviction/revival**: Evict spills a session's state to its
///     snapshot chain under `spill_dir` (mining: the forked workspace;
///     Armstrong: workspace + universe classification as the chain's aux
///     record; solve sessions are pure capital and just drop their
///     engines) and frees the memory. The next op on an evicted session
///     revives it transparently — warm-starting from the chain with zero
///     re-interning and zero oracle replay. Chains are written under the
///     exclusive cross-process lock (SnapshotChainPolicy::exclusive).
///
/// ## Determinism
///
/// By default every solve session gets a *private* witness cache, so its
/// verdicts AND evidence are bit-identical to a standalone sequential
/// ImplicationSolver no matter how many siblings run beside it (the
/// mixed-route chase/search race preserves this — see SolveOptions::pool).
/// `Options::share_witness_cache` opts a service into cross-session
/// replay: verdicts stay exact, but which cached witness answers first
/// becomes history-dependent.
class SolverService {
 public:
  using SessionId = std::uint64_t;

  struct Options {
    /// TaskPool width. 0 = one worker per hardware thread.
    unsigned threads = 0;
    /// Session shard count (fixed at construction).
    std::size_t shards = 4;
    /// Resident (non-closed) session ceiling; Open beyond it is refused.
    std::size_t max_sessions = 64;
    /// Concurrent in-flight op ceiling across all sessions.
    std::size_t max_inflight = 64;
    /// Lifetime step ceiling per session (charged per op, post hoc).
    std::uint64_t session_step_ceiling = UINT64_MAX;
    /// Where evicted sessions spill their snapshot chains. Empty
    /// disables Evict for stateful sessions (FailedPrecondition).
    std::string spill_dir;
    /// Fold policy for spill chains; `exclusive` is forced on so two
    /// service processes can never interleave one session's chain.
    SnapshotChainPolicy chain_policy;
    /// Share one witness cache per core across its solve sessions (see
    /// the determinism note above). Off by default.
    bool share_witness_cache = false;
    /// Race the mixed route's chase probe against its whole refutation
    /// portfolio on the pool (one Solve then fans out as chase ∥ rung0 ∥
    /// rung1 ∥ ... — see search/portfolio.h; the other routes' refutation
    /// sweeps fan their ladder rungs out too). Verdict- and evidence-
    /// preserving; off only to pin down timing.
    bool race_mixed_route = true;
    /// Base solve options for solve sessions (semantics, evidence,
    /// search shape). The shared-substrate hooks are overwritten per
    /// session.
    SolveOptions solve;
  };

  enum class SessionKind : std::uint8_t { kSolve = 0, kMine = 1, kArmstrong = 2 };

  /// Per-session counters, self-contained (safe to read after Close).
  struct SessionStats {
    SessionKind kind = SessionKind::kSolve;
    bool evicted = false;
    bool budget_exhausted = false;
    std::uint64_t ops = 0;
    std::uint64_t steps_used = 0;
    std::uint64_t evictions = 0;
    std::uint64_t revivals = 0;
    /// Substrate deltas over the shared core's sealed baseline — the
    /// shared-core reuse proof: a session that only reads warm state
    /// shows 0 for both.
    std::uint64_t values_interned = 0;
    std::uint64_t partitions_built = 0;
    /// The session's effective witness cache counters (private cache:
    /// exactly this session's traffic; shared cache: the core-wide
    /// counters this session contributed to).
    WitnessCache::Stats witness;
  };

  struct ServiceStats {
    std::size_t cores = 0;            ///< distinct substrates built
    std::uint64_t core_reuses = 0;    ///< sessions that adopted an existing core
    std::size_t sessions_resident = 0;
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_evicted = 0;
    std::uint64_t sessions_revived = 0;
    std::uint64_t rejected_inflight = 0;
    std::uint64_t rejected_capacity = 0;
    std::uint64_t rejected_budget = 0;
    unsigned pool_threads = 0;
  };

  SolverService();  ///< all-default Options
  explicit SolverService(Options options);
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// --- admission ------------------------------------------------------

  /// An implication session over (scheme, sigma). The Nth open over equal
  /// inputs shares the first's core.
  Result<SessionId> OpenSolve(SchemePtr scheme,
                              std::vector<Dependency> sigma);
  /// A mining session over `data`. The data is interned once, into the
  /// shared core; the session forks a copy-on-write overlay over it and
  /// may append private deltas.
  Result<SessionId> OpenMine(SchemePtr scheme, const Database& data);
  /// An Armstrong construction session for (fds, inds), oracle-backed by
  /// a chase over the shared core's scheme.
  Result<SessionId> OpenArmstrong(SchemePtr scheme, std::vector<Fd> fds,
                                  std::vector<Ind> inds,
                                  ArmstrongBuildOptions build = {});

  /// --- session ops (concurrent across sessions) -----------------------

  /// Decides sigma |= target within `budget` on the session's solver.
  Result<Verdict> Solve(SessionId id, const Dependency& target,
                        const Budget& budget = Budget());

  /// Appends `delta`'s tuples into the mining session's private overlay.
  Status Append(SessionId id, const Database& delta);
  Result<std::vector<Fd>> MineSessionFds(SessionId id, RelId rel,
                                         const FdMiningOptions& fd = {});
  Result<std::vector<Ind>> MineSessionInds(SessionId id,
                                           const IndMiningOptions& ind = {});
  Result<std::vector<Rd>> MineSessionRds(SessionId id);

  /// Grows the Armstrong session's universe (builder.h semantics).
  Status Extend(SessionId id, const std::vector<Dependency>& delta);
  /// The session's current verified-exact Armstrong database.
  Result<Database> ArmstrongDatabase(SessionId id);

  /// --- lifecycle ------------------------------------------------------

  /// Spills the session to its snapshot chain (stateful kinds) and frees
  /// its live engines. The next op revives it transparently.
  Status Evict(SessionId id);
  /// Removes the session. Its spill chain (if any) is left on disk.
  Status Close(SessionId id);

  Result<SessionStats> Stats(SessionId id) const;
  ServiceStats stats() const;

  TaskPool& pool() { return *pool_; }
  std::size_t shard_count() const { return shards_.size(); }
  /// The shard a scheme routes to — exposed so tests can pin collisions.
  std::size_t ShardOf(const DatabaseScheme& scheme) const;

 private:
  struct Session {
    SessionKind kind = SessionKind::kSolve;
    std::shared_ptr<const SolverCore> core;
    /// Serializes ops on this session (ops across sessions run truly
    /// concurrently on the shared caches' internal locks).
    std::mutex mu;

    /// Live engine state; null while evicted.
    std::unique_ptr<ImplicationSolver> solver;       // kSolve
    std::unique_ptr<WitnessCache> private_cache;     // kSolve, default mode
    std::unique_ptr<InternedWorkspace> mine_ws;      // kMine
    std::unique_ptr<ArmstrongSession> armstrong;     // kArmstrong
    std::unique_ptr<ChaseOracle> oracle;             // kArmstrong
    std::vector<Fd> fds;                             // kArmstrong params
    std::vector<Ind> inds;
    ArmstrongBuildOptions build;

    /// Lifetime budget; MarkExhausted is sticky across ops.
    std::unique_ptr<SharedBudgetMeter> meter;
    std::unique_ptr<SnapshotChainWriter> chain;

    bool evicted = false;
    SessionStats stats;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<SessionId, std::shared_ptr<Session>> sessions;
    std::uint64_t next = 0;
  };

  /// Bounded in-flight op count, RAII style.
  class InflightGuard;

  /// The deduplicating core registry.
  Result<std::shared_ptr<const SolverCore>> AcquireCore(
      SchemePtr scheme, std::vector<Dependency> sigma, const Database* warm);

  Result<SessionId> Admit(std::shared_ptr<Session> session);
  Result<std::shared_ptr<Session>> Find(SessionId id) const;

  /// Builds (or rebuilds, on revival) a solve session's engines over its
  /// core. Requires session->mu held.
  void ProvisionSolver(Session& s);
  /// Revives an evicted session from its spill chain. Requires s.mu held.
  Status ReviveLocked(Session& s);
  /// Charges `steps` against the session meter and folds exhaustion into
  /// its stats. Requires s.mu held.
  void ChargeLocked(Session& s, std::uint64_t steps);
  /// The session's stats plus the deltas derivable only from live state
  /// (witness counters, substrate deltas). Requires s.mu held.
  SessionStats SnapshotStatsLocked(Session& s) const;
  /// Folds the session's live-derived counters into its persistent stats
  /// (called right before live engines are dropped). Requires s.mu held.
  void FoldLiveStatsLocked(Session& s) const;
  std::string ChainPrefix(SessionId id) const;

  Options options_;
  std::unique_ptr<TaskPool> pool_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex cores_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const SolverCore>> cores_;

  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::size_t> resident_{0};

  mutable std::mutex stats_mu_;
  ServiceStats stats_;
};

}  // namespace ccfp

#endif  // CCFP_SERVICE_SERVICE_H_
