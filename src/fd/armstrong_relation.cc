#include "fd/armstrong_relation.h"

#include "fd/closure.h"
#include "util/strings.h"

namespace ccfp {

Result<std::vector<std::vector<AttrId>>> ClosedAttributeSets(
    const DatabaseScheme& scheme, RelId rel, const std::vector<Fd>& sigma) {
  const std::size_t arity = scheme.relation(rel).arity();
  if (arity > 20) {
    return Status::InvalidArgument(
        StrCat("arity ", arity, " exceeds the closed-set enumeration bound"));
  }
  for (const Fd& fd : sigma) CCFP_RETURN_NOT_OK(Validate(scheme, fd));

  FdClosure closure(scheme, rel, sigma);
  std::vector<std::vector<AttrId>> closed;
  for (std::uint32_t mask = 0; mask < (1u << arity); ++mask) {
    std::vector<AttrId> attrs;
    for (AttrId a = 0; a < arity; ++a) {
      if (mask & (1u << a)) attrs.push_back(a);
    }
    if (closure.Closure(attrs) == attrs) closed.push_back(std::move(attrs));
  }
  return closed;
}

Result<Relation> ArmstrongRelationForFds(const DatabaseScheme& scheme,
                                         RelId rel,
                                         const std::vector<Fd>& sigma) {
  const std::size_t arity = scheme.relation(rel).arity();
  CCFP_ASSIGN_OR_RETURN(std::vector<std::vector<AttrId>> closed,
                        ClosedAttributeSets(scheme, rel, sigma));
  Relation relation(arity);
  // Entry 0 on the closed set, a globally fresh positive value elsewhere:
  // tuples t_W and t_V then agree exactly on W intersect V.
  std::int64_t fresh = 1;
  for (const std::vector<AttrId>& w : closed) {
    Tuple t(arity);
    std::size_t w_pos = 0;
    for (AttrId a = 0; a < arity; ++a) {
      if (w_pos < w.size() && w[w_pos] == a) {
        t[a] = Value::Int(0);
        ++w_pos;
      } else {
        t[a] = Value::Int(fresh++);
      }
    }
    relation.Insert(std::move(t));
  }
  return relation;
}

}  // namespace ccfp
