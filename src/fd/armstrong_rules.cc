#include "fd/armstrong_rules.h"

#include <algorithm>
#include <set>

#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

namespace {

std::set<AttrId> ToSet(const std::vector<AttrId>& v) {
  return std::set<AttrId>(v.begin(), v.end());
}

bool SubsetOf(const std::set<AttrId>& a, const std::set<AttrId>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

std::set<AttrId> Difference(const std::set<AttrId>& a,
                            const std::set<AttrId>& b) {
  std::set<AttrId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::inserter(out, out.begin()));
  return out;
}

std::vector<AttrId> SortedVec(const std::set<AttrId>& s) {
  return std::vector<AttrId>(s.begin(), s.end());
}

// FDs are compared setwise for proof checking: the order of attributes on
// either side of an FD does not affect its meaning.
bool SameFdSetwise(const Fd& a, const Fd& b) {
  return a.rel == b.rel && ToSet(a.lhs) == ToSet(b.lhs) &&
         ToSet(a.rhs) == ToSet(b.rhs);
}

}  // namespace

const char* FdRuleToString(FdRule rule) {
  switch (rule) {
    case FdRule::kHypothesis:
      return "hypothesis";
    case FdRule::kReflexivity:
      return "reflexivity";
    case FdRule::kAugmentation:
      return "augmentation";
    case FdRule::kTransitivity:
      return "transitivity";
    case FdRule::kUnion:
      return "union";
    case FdRule::kDecomposition:
      return "decomposition";
  }
  return "?";
}

const Fd& FdProof::conclusion() const {
  CCFP_CHECK_MSG(!steps_.empty(), "empty proof has no conclusion");
  return steps_.back().conclusion;
}

Status FdProof::Check() const {
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const FdProofStep& step = steps_[i];
    CCFP_RETURN_NOT_OK(Validate(*scheme_, step.conclusion));
    for (std::size_t a : step.antecedents) {
      if (a >= i) {
        return Status::InvalidArgument(
            StrCat("step ", i, " cites later/own line ", a));
      }
      if (steps_[a].conclusion.rel != step.conclusion.rel) {
        return Status::InvalidArgument(
            StrCat("step ", i, " mixes relations with line ", a));
      }
    }
    const Fd& c = step.conclusion;
    std::set<AttrId> cl = ToSet(c.lhs);
    std::set<AttrId> cr = ToSet(c.rhs);
    auto fail = [&](const char* why) {
      return Status::InvalidArgument(StrCat(
          "step ", i, " (", FdRuleToString(step.rule), "): ", why, ": ",
          Dependency(c).ToString(*scheme_)));
    };
    switch (step.rule) {
      case FdRule::kHypothesis: {
        bool found = false;
        for (const Fd& h : hypotheses_) {
          if (SameFdSetwise(h, c)) {
            found = true;
            break;
          }
        }
        if (!found) return fail("not a hypothesis");
        break;
      }
      case FdRule::kReflexivity: {
        if (!step.antecedents.empty()) return fail("expects no antecedents");
        if (!SubsetOf(cr, cl)) return fail("rhs not contained in lhs");
        break;
      }
      case FdRule::kAugmentation: {
        if (step.antecedents.size() != 1) return fail("expects 1 antecedent");
        const Fd& p = steps_[step.antecedents[0]].conclusion;
        std::set<AttrId> pl = ToSet(p.lhs), pr = ToSet(p.rhs);
        // Conclusion must be (X u Z) -> (Y u Z) for some Z. Equivalent
        // conditions: X <= X', Y <= Y', X'-X <= Y', Y'-Y <= X'.
        if (!SubsetOf(pl, cl) || !SubsetOf(pr, cr) ||
            !SubsetOf(Difference(cl, pl), cr) ||
            !SubsetOf(Difference(cr, pr), cl)) {
          return fail("not an augmentation of the antecedent");
        }
        break;
      }
      case FdRule::kTransitivity: {
        if (step.antecedents.size() != 2) return fail("expects 2 antecedents");
        const Fd& p = steps_[step.antecedents[0]].conclusion;
        const Fd& q = steps_[step.antecedents[1]].conclusion;
        if (ToSet(p.rhs) != ToSet(q.lhs)) {
          return fail("middle sets of transitivity do not match");
        }
        if (ToSet(p.lhs) != cl || ToSet(q.rhs) != cr) {
          return fail("conclusion does not match X -> Z");
        }
        break;
      }
      case FdRule::kUnion: {
        if (step.antecedents.size() != 2) return fail("expects 2 antecedents");
        const Fd& p = steps_[step.antecedents[0]].conclusion;
        const Fd& q = steps_[step.antecedents[1]].conclusion;
        if (ToSet(p.lhs) != ToSet(q.lhs) || ToSet(p.lhs) != cl) {
          return fail("antecedent lhs sets differ");
        }
        std::set<AttrId> uni = ToSet(p.rhs);
        std::set<AttrId> qr = ToSet(q.rhs);
        uni.insert(qr.begin(), qr.end());
        if (uni != cr) return fail("rhs is not the union of antecedent rhs");
        break;
      }
      case FdRule::kDecomposition: {
        if (step.antecedents.size() != 1) return fail("expects 1 antecedent");
        const Fd& p = steps_[step.antecedents[0]].conclusion;
        if (ToSet(p.lhs) != cl) return fail("lhs differs from antecedent");
        if (!SubsetOf(cr, ToSet(p.rhs))) {
          return fail("rhs not contained in antecedent rhs");
        }
        break;
      }
    }
  }
  if (steps_.empty()) return Status::InvalidArgument("empty proof");
  return Status::OK();
}

std::string FdProof::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const FdProofStep& s = steps_[i];
    out += StrCat(i, ". ", Dependency(s.conclusion).ToString(*scheme_), "   [",
                  FdRuleToString(s.rule));
    if (!s.antecedents.empty()) {
      out += StrCat(" of ", JoinMapped(s.antecedents, ", ",
                                       [](std::size_t a) {
                                         return std::to_string(a);
                                       }));
    }
    out += "]\n";
  }
  return out;
}

Result<FdProof> DeriveFdProof(SchemePtr scheme, const std::vector<Fd>& sigma,
                              const Fd& target) {
  CCFP_RETURN_NOT_OK(Validate(*scheme, target));
  for (const Fd& fd : sigma) CCFP_RETURN_NOT_OK(Validate(*scheme, fd));

  FdProof proof(scheme, sigma);
  const RelId rel = target.rel;
  std::set<AttrId> closure = ToSet(target.lhs);

  // Line 0: X -> X by reflexivity; `current` tracks the line proving
  // X -> closure as the closure grows.
  proof.AddStep({Fd{rel, target.lhs, SortedVec(closure)},
                 FdRule::kReflexivity,
                 {}});
  std::size_t current = 0;

  // Quadratic closure loop (proofs are small; the linear engine lives in
  // FdClosure). Each firing hypothesis W -> V adds four proof lines.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& hyp : sigma) {
      if (hyp.rel != rel) continue;
      std::set<AttrId> w = ToSet(hyp.lhs), v = ToSet(hyp.rhs);
      if (!SubsetOf(w, closure) || SubsetOf(v, closure)) continue;
      // (a) X -> W by decomposition of X -> closure.
      proof.AddStep({Fd{rel, target.lhs, SortedVec(w)},
                     FdRule::kDecomposition,
                     {current}});
      std::size_t x_to_w = proof.steps().size() - 1;
      // (b) W -> V by hypothesis.
      proof.AddStep({hyp, FdRule::kHypothesis, {}});
      std::size_t w_to_v = proof.steps().size() - 1;
      // (c) X -> V by transitivity.
      proof.AddStep({Fd{rel, target.lhs, SortedVec(v)},
                     FdRule::kTransitivity,
                     {x_to_w, w_to_v}});
      std::size_t x_to_v = proof.steps().size() - 1;
      // (d) X -> closure u V by union.
      closure.insert(v.begin(), v.end());
      proof.AddStep({Fd{rel, target.lhs, SortedVec(closure)},
                     FdRule::kUnion,
                     {current, x_to_v}});
      current = proof.steps().size() - 1;
      changed = true;
    }
  }

  if (!SubsetOf(ToSet(target.rhs), closure)) {
    return Status::FailedPrecondition(
        StrCat("sigma does not imply ",
               Dependency(target).ToString(*scheme)));
  }
  // Final line: X -> rhs by decomposition.
  proof.AddStep({Fd{rel, target.lhs, target.rhs},
                 FdRule::kDecomposition,
                 {current}});
  CCFP_RETURN_NOT_OK(proof.Check());
  return proof;
}

}  // namespace ccfp
