#include "fd/keys.h"

#include <algorithm>
#include <set>

#include "fd/closure.h"

namespace ccfp {

bool IsSuperkey(const DatabaseScheme& scheme, RelId rel,
                const std::vector<Fd>& sigma,
                const std::vector<AttrId>& attrs) {
  FdClosure closure(scheme, rel, sigma);
  return closure.Closure(attrs).size() == scheme.relation(rel).arity();
}

namespace {

// Shrinks a superkey to a minimal key by greedy attribute removal.
std::vector<AttrId> Minimize(const FdClosure& closure, std::size_t arity,
                             std::vector<AttrId> key) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = 0; i < key.size(); ++i) {
      std::vector<AttrId> smaller = key;
      smaller.erase(smaller.begin() + static_cast<std::ptrdiff_t>(i));
      if (closure.Closure(smaller).size() == arity) {
        key = std::move(smaller);
        shrunk = true;
        break;
      }
    }
  }
  return key;
}

}  // namespace

std::vector<std::vector<AttrId>> CandidateKeys(const DatabaseScheme& scheme,
                                               RelId rel,
                                               const std::vector<Fd>& sigma) {
  const std::size_t arity = scheme.relation(rel).arity();
  FdClosure closure(scheme, rel, sigma);

  std::vector<AttrId> all(arity);
  for (AttrId a = 0; a < arity; ++a) all[a] = a;

  std::set<std::vector<AttrId>> keys;
  std::vector<std::vector<AttrId>> worklist;
  worklist.push_back(Minimize(closure, arity, all));
  keys.insert(worklist.back());

  // Lucchesi–Osborn: for each known key K and FD X -> Y, the set
  // X u (K - Y) is a superkey; its minimization may be a new key.
  while (!worklist.empty()) {
    std::vector<AttrId> key = std::move(worklist.back());
    worklist.pop_back();
    for (const Fd& fd : sigma) {
      if (fd.rel != rel) continue;
      std::set<AttrId> candidate(fd.lhs.begin(), fd.lhs.end());
      for (AttrId a : key) {
        if (std::find(fd.rhs.begin(), fd.rhs.end(), a) == fd.rhs.end()) {
          candidate.insert(a);
        }
      }
      std::vector<AttrId> cand_vec(candidate.begin(), candidate.end());
      if (closure.Closure(cand_vec).size() != arity) continue;
      std::vector<AttrId> minimized =
          Minimize(closure, arity, std::move(cand_vec));
      if (keys.insert(minimized).second) worklist.push_back(minimized);
    }
  }
  return std::vector<std::vector<AttrId>>(keys.begin(), keys.end());
}

}  // namespace ccfp
