#ifndef CCFP_FD_MINIMAL_COVER_H_
#define CCFP_FD_MINIMAL_COVER_H_

#include <vector>

#include "core/dependency.h"
#include "core/schema.h"

namespace ccfp {

/// Computes a minimal cover of `sigma` (FDs over any relations of `scheme`):
/// every rhs is a single attribute, no lhs attribute is redundant, and no FD
/// is redundant. The result is logically equivalent to `sigma`.
std::vector<Fd> MinimalCover(const DatabaseScheme& scheme,
                             const std::vector<Fd>& sigma);

/// True iff the two FD sets imply each other.
bool EquivalentFdSets(const DatabaseScheme& scheme,
                      const std::vector<Fd>& a, const std::vector<Fd>& b);

}  // namespace ccfp

#endif  // CCFP_FD_MINIMAL_COVER_H_
