#ifndef CCFP_FD_ARMSTRONG_RULES_H_
#define CCFP_FD_ARMSTRONG_RULES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dependency.h"
#include "core/schema.h"
#include "util/status.h"

namespace ccfp {

/// Justification of one step in an FD proof. The first three are Armstrong's
/// primitive rules [Ar]; union and decomposition are the standard derived
/// rules, accepted by the checker for readability of machine-built proofs.
enum class FdRule : std::uint8_t {
  kHypothesis,     ///< member of Sigma
  kReflexivity,    ///< X -> Y when Y is a subset of X (0-ary)
  kAugmentation,   ///< from X -> Y infer XZ -> YZ (1-ary)
  kTransitivity,   ///< from X -> Y and Y -> Z infer X -> Z (2-ary)
  kUnion,          ///< from X -> Y and X -> Z infer X -> YZ (derived)
  kDecomposition,  ///< from X -> YZ infer X -> Y (derived)
};

const char* FdRuleToString(FdRule rule);

/// One proof line: a conclusion plus its justification. `antecedents` are
/// indices of earlier lines.
struct FdProofStep {
  Fd conclusion;
  FdRule rule;
  std::vector<std::size_t> antecedents;
};

/// A machine-checkable proof of the final line's FD from a hypothesis set,
/// in the Armstrong system. FD proofs here treat attribute sequences as
/// sets (order on either side of an FD does not affect its meaning).
class FdProof {
 public:
  FdProof(SchemePtr scheme, std::vector<Fd> hypotheses)
      : scheme_(std::move(scheme)), hypotheses_(std::move(hypotheses)) {}

  const std::vector<FdProofStep>& steps() const { return steps_; }
  const std::vector<Fd>& hypotheses() const { return hypotheses_; }

  /// The proved FD (last line). Proof must be nonempty.
  const Fd& conclusion() const;

  void AddStep(FdProofStep step) { steps_.push_back(std::move(step)); }

  /// Verifies every line against its rule. Rejects malformed indices,
  /// misapplied rules, and hypothesis lines not in the hypothesis set.
  Status Check() const;

  /// Multi-line rendering with rule annotations.
  std::string ToString() const;

 private:
  SchemePtr scheme_;
  std::vector<Fd> hypotheses_;
  std::vector<FdProofStep> steps_;
};

/// Derives an Armstrong-system proof of `target` from `sigma`, or an error
/// if `sigma` does not imply `target`. The proof is built from a closure
/// run: each fired FD contributes reflexivity + transitivity + union steps.
Result<FdProof> DeriveFdProof(SchemePtr scheme, const std::vector<Fd>& sigma,
                              const Fd& target);

}  // namespace ccfp

#endif  // CCFP_FD_ARMSTRONG_RULES_H_
