#include "fd/normal_forms.h"

#include <algorithm>
#include <functional>
#include <set>

#include "fd/closure.h"
#include "fd/keys.h"
#include "util/strings.h"

namespace ccfp {

namespace {

// Enumerates all nonempty proper-candidate lhs subsets of rel's attributes.
void ForEachSubset(std::size_t arity,
                   const std::function<void(const std::vector<AttrId>&)>& fn) {
  std::vector<AttrId> current;
  std::function<void(AttrId)> rec = [&](AttrId start) {
    if (!current.empty()) fn(current);
    for (AttrId a = start; a < arity; ++a) {
      current.push_back(a);
      rec(a + 1);
      current.pop_back();
    }
  };
  rec(0);
}

}  // namespace

std::vector<NormalFormViolation> BcnfViolations(
    const DatabaseScheme& scheme, RelId rel, const std::vector<Fd>& sigma) {
  std::vector<NormalFormViolation> violations;
  const std::size_t arity = scheme.relation(rel).arity();
  FdClosure closure(*std::addressof(scheme), rel, sigma);
  ForEachSubset(arity, [&](const std::vector<AttrId>& lhs) {
    std::vector<AttrId> lhs_closure = closure.Closure(lhs);
    if (lhs_closure.size() == arity) return;  // superkey: no violation
    for (AttrId a : lhs_closure) {
      if (std::find(lhs.begin(), lhs.end(), a) != lhs.end()) continue;
      violations.push_back(NormalFormViolation{
          Fd{rel, lhs, {a}},
          StrCat("lhs {", AttrNames(scheme, rel, lhs),
                 "} determines ", scheme.relation(rel).attr_name(a),
                 " but is not a superkey")});
    }
  });
  return violations;
}

bool IsBcnf(const DatabaseScheme& scheme, RelId rel,
            const std::vector<Fd>& sigma) {
  return BcnfViolations(scheme, rel, sigma).empty();
}

std::vector<AttrId> PrimeAttributes(const DatabaseScheme& scheme, RelId rel,
                                    const std::vector<Fd>& sigma) {
  std::set<AttrId> prime;
  for (const std::vector<AttrId>& key : CandidateKeys(scheme, rel, sigma)) {
    prime.insert(key.begin(), key.end());
  }
  return std::vector<AttrId>(prime.begin(), prime.end());
}

bool Is3nf(const DatabaseScheme& scheme, RelId rel,
           const std::vector<Fd>& sigma) {
  std::vector<AttrId> prime = PrimeAttributes(scheme, rel, sigma);
  for (const NormalFormViolation& v : BcnfViolations(scheme, rel, sigma)) {
    AttrId a = v.fd.rhs[0];
    if (!std::binary_search(prime.begin(), prime.end(), a)) return false;
  }
  return true;
}

}  // namespace ccfp
