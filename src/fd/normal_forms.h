#ifndef CCFP_FD_NORMAL_FORMS_H_
#define CCFP_FD_NORMAL_FORMS_H_

#include <string>
#include <vector>

#include "core/dependency.h"
#include "core/schema.h"

namespace ccfp {

/// Schema-design diagnostics on top of the FD substrate. The paper's
/// introduction motivates INDs as design constraints ("they permit us to
/// selectively define what data must be duplicated in what relations");
/// this module supplies the standard FD-side design checks that accompany
/// them in practice.

/// An FD that witnesses a normal-form violation.
struct NormalFormViolation {
  Fd fd;
  std::string reason;
};

/// Is `rel` in Boyce-Codd normal form under `sigma`? (Every nontrivial FD
/// X -> Y on rel that is implied by sigma has X a superkey.) The check
/// examines the implied FDs with minimal left-hand sides via the candidate
/// keys and closure engine.
bool IsBcnf(const DatabaseScheme& scheme, RelId rel,
            const std::vector<Fd>& sigma);

/// Is `rel` in third normal form? (Every implied nontrivial FD X -> A has
/// X a superkey or A a prime attribute.)
bool Is3nf(const DatabaseScheme& scheme, RelId rel,
           const std::vector<Fd>& sigma);

/// All BCNF violations of `rel`: implied nontrivial FDs X -> A (singleton
/// rhs, X drawn from the attribute subsets of rel) whose lhs is not a
/// superkey. Exponential in arity; intended for design-time use on
/// human-sized schemas.
std::vector<NormalFormViolation> BcnfViolations(const DatabaseScheme& scheme,
                                                RelId rel,
                                                const std::vector<Fd>& sigma);

/// Attributes of `rel` that occur in some candidate key ("prime").
std::vector<AttrId> PrimeAttributes(const DatabaseScheme& scheme, RelId rel,
                                    const std::vector<Fd>& sigma);

}  // namespace ccfp

#endif  // CCFP_FD_NORMAL_FORMS_H_
