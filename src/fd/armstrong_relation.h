#ifndef CCFP_FD_ARMSTRONG_RELATION_H_
#define CCFP_FD_ARMSTRONG_RELATION_H_

#include <vector>

#include "core/database.h"
#include "core/dependency.h"
#include "core/schema.h"
#include "util/status.h"

namespace ccfp {

/// The classical closed-form Armstrong relation for an FD set (Armstrong;
/// Fagin [Fa2], cited by the paper): one tuple per *closed* attribute set
/// W = closure(W), with entry 0 on the attributes of W and a tuple-unique
/// value elsewhere. Two such tuples agree exactly on the intersection of
/// their closed sets, which is again closed; hence the relation satisfies
/// X -> Y iff Y is contained in closure(X), i.e., satisfies exactly the
/// consequences of the FD set.
///
/// This is the zero-iteration counterpart of the chase-based
/// BuildArmstrongDatabase: exact for FDs over a single relation, and
/// exponential in arity (one tuple per closed set), so intended for
/// design-time arities.
///
/// Returns InvalidArgument if `rel`'s arity exceeds 20 (2^20 closed-set
/// candidates is the sanity bound).
Result<Relation> ArmstrongRelationForFds(const DatabaseScheme& scheme,
                                         RelId rel,
                                         const std::vector<Fd>& sigma);

/// All closed attribute sets of `rel` under `sigma`, as sorted attribute
/// sequences (the lattice the construction enumerates).
Result<std::vector<std::vector<AttrId>>> ClosedAttributeSets(
    const DatabaseScheme& scheme, RelId rel, const std::vector<Fd>& sigma);

}  // namespace ccfp

#endif  // CCFP_FD_ARMSTRONG_RELATION_H_
