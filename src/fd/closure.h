#ifndef CCFP_FD_CLOSURE_H_
#define CCFP_FD_CLOSURE_H_

#include <vector>

#include "core/dependency.h"
#include "core/schema.h"

namespace ccfp {

/// Attribute-set closure engine for the FDs of a single relation scheme,
/// using the linear-time counter algorithm of Beeri and Bernstein (the "FD
/// decision procedure" the paper contrasts with its IND procedure in
/// Section 3: "The FD decision procedure can be implemented ... to run in
/// linear time").
///
/// The engine is built once per (relation, FD set) and then answers closure
/// and implication queries; construction is O(total FD size), each query is
/// O(total FD size) as well.
class FdClosure {
 public:
  /// `fds` may mention any relation; only those on `rel` participate.
  FdClosure(const DatabaseScheme& scheme, RelId rel,
            const std::vector<Fd>& fds);

  std::size_t arity() const { return arity_; }

  /// X+ : every attribute functionally determined by `start` under the FDs.
  /// Result is a sorted attribute sequence.
  std::vector<AttrId> Closure(const std::vector<AttrId>& start) const;

  /// Membership variant: true iff every attribute of fd.rhs is in the
  /// closure of fd.lhs (i.e., the FD set implies `fd`). `fd` must be on the
  /// same relation this engine was built for.
  bool Implies(const Fd& fd) const;

 private:
  std::size_t arity_;
  RelId rel_;
  // Flattened FDs on rel_: lhs sizes, rhs lists, attr -> fds containing it.
  std::vector<std::vector<AttrId>> lhs_;
  std::vector<std::vector<AttrId>> rhs_;
  std::vector<std::vector<std::uint32_t>> fds_with_attr_in_lhs_;
};

/// One-shot helpers (group by relation internally).

/// True iff `sigma` (FDs only) logically implies `target`. FDs on other
/// relations are ignored — a set of FDs over one relation can imply an FD
/// only over that same relation (used in Lemma 7.8 of the paper).
bool FdImplies(const DatabaseScheme& scheme, const std::vector<Fd>& sigma,
               const Fd& target);

/// X+ under `sigma` for attributes of relation `rel`.
std::vector<AttrId> AttributeClosure(const DatabaseScheme& scheme, RelId rel,
                                     const std::vector<Fd>& sigma,
                                     const std::vector<AttrId>& start);

}  // namespace ccfp

#endif  // CCFP_FD_CLOSURE_H_
