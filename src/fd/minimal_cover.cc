#include "fd/minimal_cover.h"

#include <algorithm>

#include "fd/closure.h"

namespace ccfp {

std::vector<Fd> MinimalCover(const DatabaseScheme& scheme,
                             const std::vector<Fd>& sigma) {
  // 1. Split right-hand sides into singletons.
  std::vector<Fd> cover;
  for (const Fd& fd : sigma) {
    for (AttrId b : fd.rhs) {
      cover.push_back(Fd{fd.rel, fd.lhs, {b}});
    }
  }

  // 2. Left-reduce: drop extraneous lhs attributes.
  for (Fd& fd : cover) {
    bool shrunk = true;
    while (shrunk && fd.lhs.size() > 0) {
      shrunk = false;
      for (std::size_t i = 0; i < fd.lhs.size(); ++i) {
        std::vector<AttrId> smaller = fd.lhs;
        smaller.erase(smaller.begin() + static_cast<std::ptrdiff_t>(i));
        if (FdImplies(scheme, cover, Fd{fd.rel, smaller, fd.rhs})) {
          fd.lhs = std::move(smaller);
          shrunk = true;
          break;
        }
      }
    }
  }

  // 3. Drop redundant FDs (an FD implied by the others).
  for (std::size_t i = 0; i < cover.size();) {
    std::vector<Fd> rest;
    rest.reserve(cover.size() - 1);
    for (std::size_t j = 0; j < cover.size(); ++j) {
      if (j != i) rest.push_back(cover[j]);
    }
    if (FdImplies(scheme, rest, cover[i])) {
      cover.erase(cover.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  // 4. De-duplicate (splitting can produce repeats).
  std::sort(cover.begin(), cover.end());
  cover.erase(std::unique(cover.begin(), cover.end()), cover.end());
  return cover;
}

bool EquivalentFdSets(const DatabaseScheme& scheme, const std::vector<Fd>& a,
                      const std::vector<Fd>& b) {
  for (const Fd& fd : b) {
    if (!FdImplies(scheme, a, fd)) return false;
  }
  for (const Fd& fd : a) {
    if (!FdImplies(scheme, b, fd)) return false;
  }
  return true;
}

}  // namespace ccfp
