#include "fd/closure.h"

#include <algorithm>

#include "util/check.h"

namespace ccfp {

FdClosure::FdClosure(const DatabaseScheme& scheme, RelId rel,
                     const std::vector<Fd>& fds)
    : arity_(scheme.relation(rel).arity()), rel_(rel) {
  fds_with_attr_in_lhs_.assign(arity_, {});
  for (const Fd& fd : fds) {
    if (fd.rel != rel) continue;
    std::uint32_t id = static_cast<std::uint32_t>(lhs_.size());
    lhs_.push_back(fd.lhs);
    rhs_.push_back(fd.rhs);
    for (AttrId a : fd.lhs) fds_with_attr_in_lhs_[a].push_back(id);
  }
}

std::vector<AttrId> FdClosure::Closure(
    const std::vector<AttrId>& start) const {
  std::vector<char> in_closure(arity_, 0);
  // remaining[i]: number of lhs attributes of FD i not yet in the closure;
  // when it reaches zero the FD "fires" and contributes its rhs.
  std::vector<std::uint32_t> remaining(lhs_.size());
  std::vector<AttrId> queue;
  queue.reserve(arity_);

  auto add = [&](AttrId a) {
    if (!in_closure[a]) {
      in_closure[a] = 1;
      queue.push_back(a);
    }
  };

  for (std::size_t i = 0; i < lhs_.size(); ++i) {
    remaining[i] = static_cast<std::uint32_t>(lhs_[i].size());
    if (remaining[i] == 0) {
      // Empty-lhs FD ("0 -> Y"): fires unconditionally.
      for (AttrId b : rhs_[i]) add(b);
    }
  }
  for (AttrId a : start) add(a);

  for (std::size_t head = 0; head < queue.size(); ++head) {
    AttrId a = queue[head];
    for (std::uint32_t fd_id : fds_with_attr_in_lhs_[a]) {
      if (--remaining[fd_id] == 0) {
        for (AttrId b : rhs_[fd_id]) add(b);
      }
    }
  }

  std::vector<AttrId> result;
  for (AttrId a = 0; a < arity_; ++a) {
    if (in_closure[a]) result.push_back(a);
  }
  return result;
}

bool FdClosure::Implies(const Fd& fd) const {
  CCFP_CHECK_MSG(fd.rel == rel_, "FD is on a different relation");
  std::vector<AttrId> closure = Closure(fd.lhs);
  for (AttrId a : fd.rhs) {
    if (!std::binary_search(closure.begin(), closure.end(), a)) return false;
  }
  return true;
}

bool FdImplies(const DatabaseScheme& scheme, const std::vector<Fd>& sigma,
               const Fd& target) {
  FdClosure closure(scheme, target.rel, sigma);
  return closure.Implies(target);
}

std::vector<AttrId> AttributeClosure(const DatabaseScheme& scheme, RelId rel,
                                     const std::vector<Fd>& sigma,
                                     const std::vector<AttrId>& start) {
  return FdClosure(scheme, rel, sigma).Closure(start);
}

}  // namespace ccfp
