#ifndef CCFP_FD_KEYS_H_
#define CCFP_FD_KEYS_H_

#include <vector>

#include "core/dependency.h"
#include "core/schema.h"

namespace ccfp {

/// True iff `attrs` functionally determines every attribute of `rel`.
bool IsSuperkey(const DatabaseScheme& scheme, RelId rel,
                const std::vector<Fd>& sigma,
                const std::vector<AttrId>& attrs);

/// All candidate (minimal) keys of `rel` under `sigma`, each a sorted
/// attribute sequence, in lexicographic order. Uses the Lucchesi–Osborn
/// saturation: start from one key, expand with lhs attributes of FDs.
/// Worst-case exponential in the number of keys (which is unavoidable).
std::vector<std::vector<AttrId>> CandidateKeys(const DatabaseScheme& scheme,
                                               RelId rel,
                                               const std::vector<Fd>& sigma);

}  // namespace ccfp

#endif  // CCFP_FD_KEYS_H_
