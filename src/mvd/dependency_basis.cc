#include "mvd/dependency_basis.h"

#include <algorithm>
#include <set>

#include "util/strings.h"

namespace ccfp {

namespace {

using AttrSet = std::set<AttrId>;

AttrSet ToSet(const std::vector<AttrId>& v) {
  return AttrSet(v.begin(), v.end());
}

bool Intersects(const AttrSet& a, const AttrSet& b) {
  for (AttrId x : a) {
    if (b.count(x) > 0) return true;
  }
  return false;
}

bool SubsetOf(const AttrSet& a, const AttrSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

Result<std::vector<std::vector<AttrId>>> DependencyBasis(
    const DatabaseScheme& scheme, RelId rel, const std::vector<Mvd>& sigma,
    const std::vector<AttrId>& x) {
  const std::size_t arity = scheme.relation(rel).arity();
  for (const Mvd& mvd : sigma) {
    CCFP_RETURN_NOT_OK(Validate(scheme, mvd));
    if (mvd.rel != rel) {
      return Status::InvalidArgument(
          "all MVDs must be on the same relation as the basis query");
    }
  }
  AttrSet x_set = ToSet(x);
  for (AttrId a : x) {
    if (a >= arity) return Status::InvalidArgument("attribute out of range");
  }

  // Start with the single block of everything outside X; refine by
  // Beeri's splitting rule: for W ->> V in sigma with W disjoint from a
  // block S that meets V without being contained in it, split S into
  // S ^ V and S - V.
  std::vector<AttrSet> basis;
  {
    AttrSet rest;
    for (AttrId a = 0; a < arity; ++a) {
      if (x_set.count(a) == 0) rest.insert(a);
    }
    if (!rest.empty()) basis.push_back(std::move(rest));
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Mvd& mvd : sigma) {
      AttrSet w = ToSet(mvd.x);
      AttrSet v = ToSet(mvd.y);
      for (std::size_t i = 0; i < basis.size(); ++i) {
        const AttrSet& s = basis[i];
        if (Intersects(w, s)) continue;  // rule needs W disjoint from S
        if (!Intersects(v, s) || SubsetOf(s, v)) continue;
        AttrSet in_v, out_v;
        for (AttrId a : s) {
          (v.count(a) > 0 ? in_v : out_v).insert(a);
        }
        basis[i] = std::move(in_v);
        basis.push_back(std::move(out_v));
        changed = true;
        break;  // basis mutated; restart the scan for this MVD
      }
    }
  }

  std::vector<std::vector<AttrId>> result;
  result.reserve(basis.size());
  for (const AttrSet& s : basis) {
    result.emplace_back(s.begin(), s.end());
  }
  std::sort(result.begin(), result.end());
  return result;
}

Result<bool> MvdImplies(const DatabaseScheme& scheme,
                        const std::vector<Mvd>& sigma, const Mvd& target) {
  CCFP_RETURN_NOT_OK(Validate(scheme, target));
  CCFP_ASSIGN_OR_RETURN(
      std::vector<std::vector<AttrId>> basis,
      DependencyBasis(scheme, target.rel, sigma, target.x));
  // target.x ->> target.y holds iff Y - X is a union of basis blocks.
  AttrSet x_set(target.x.begin(), target.x.end());
  AttrSet need;
  for (AttrId a : target.y) {
    if (x_set.count(a) == 0) need.insert(a);
  }
  for (const std::vector<AttrId>& block : basis) {
    bool inside = need.count(block.front()) > 0;
    for (AttrId a : block) {
      if ((need.count(a) > 0) != inside) {
        return false;  // block straddles the boundary of Y - X
      }
    }
    if (inside) {
      for (AttrId a : block) need.erase(a);
    }
  }
  return need.empty();
}

}  // namespace ccfp
