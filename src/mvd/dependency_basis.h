#ifndef CCFP_MVD_DEPENDENCY_BASIS_H_
#define CCFP_MVD_DEPENDENCY_BASIS_H_

#include <vector>

#include "core/dependency.h"
#include "core/schema.h"
#include "util/status.h"

namespace ccfp {

/// The dependency basis of an attribute set X under a set of (full) MVDs
/// over one relation (Beeri's algorithm): the unique partition of the
/// attributes outside X such that X ->> Y holds iff Y - X is a union of
/// blocks. Section 5 of the paper contrasts EMVDs (no known k-ary
/// axiomatization, Theorem 5.3) with larger, better-behaved classes; full
/// MVDs are the classic tractable case — Beeri–Fagin–Howard [BFH] give a
/// complete axiomatization and this basis computation decides implication
/// in polynomial time.
///
/// Returns the blocks as sorted attribute sequences, sorted by first
/// attribute. All MVDs must be on relation `rel`.
Result<std::vector<std::vector<AttrId>>> DependencyBasis(
    const DatabaseScheme& scheme, RelId rel, const std::vector<Mvd>& sigma,
    const std::vector<AttrId>& x);

/// Decides sigma |= target for full MVDs over a single relation via the
/// dependency basis (finite = unrestricted implication for MVDs).
Result<bool> MvdImplies(const DatabaseScheme& scheme,
                        const std::vector<Mvd>& sigma, const Mvd& target);

}  // namespace ccfp

#endif  // CCFP_MVD_DEPENDENCY_BASIS_H_
