#ifndef CCFP_VERIFY_VERIFIER_H_
#define CCFP_VERIFY_VERIFIER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/dependency.h"
#include "core/interned.h"
#include "core/workspace.h"
#include "util/budget.h"
#include "util/status.h"
#include "util/task_pool.h"

namespace ccfp {

/// Handle of one watched dependency inside an IncrementalVerifier.
using WatchId = std::size_t;

/// Delta-driven satisfaction checking over a live InternedWorkspace.
///
/// The full-sweep engines (core/model_check.h, reached through
/// `InternedWorkspace::Satisfies` / `IdDatabase::Satisfies`) pay O(relation)
/// per query no matter how little changed since the last one. The paper's
/// loops — Armstrong build -> chase -> verify -> repair, the solver's
/// decide -> refute, mining sweeps re-run after appends — re-check the
/// same dependencies against slightly-changed databases over and over,
/// which is exactly the access pattern incremental maintenance exploits.
///
/// An IncrementalVerifier compiles each watched FD/IND/RD (and
/// refutation-only EMVD/MVD) into a *watcher*: per-dependency counters
/// keyed on the workspace's cached projection partitions. `CatchUp()`
/// consumes the workspace change feed (core/workspace.h) from a cursor and
/// updates every affected watcher in time proportional to the delta, after
/// which `Satisfies(id)` is O(1) and `FindViolation(id)` is O(1) for a
/// satisfied dependency. Watcher shapes:
///
///   * FD X -> Y: the refinement criterion |pi_X| == |pi_{X u Y}|. Both
///     counts come from *composed group counters*: the counter for a
///     sorted attribute set S assigns dense stable group ids to the alive
///     distinct (prefix-group, last-column-group) id pairs, built
///     recursively from the workspace's singleton partitions — so only
///     width-1 column sets ever hash a projection tuple, every wider set
///     costs two array reads plus one open-addressed integer-map op per
///     event, and counters are shared across every FD whose lhs or
///     lhs-union-rhs lands on the same attribute set.
///   * IND R[X] <= S[Y]: both sides read a shared *group tracker* — one
///     per (relation, column sequence), holding the per-slot counted
///     group and per-group alive counts ONCE for every IND that projects
///     the same columns on either side — plus a lazily resolved
///     group-to-group key link per watcher; `missing` counts alive lhs
///     groups without an alive rhs witness. (The per-watcher per-slot
///     seen arrays this replaces were the biggest per-watcher line item.)
///   * RD: per-slot violation flags.
///   * EMVD/MVD: per-X-group distinct-XY / distinct-XZ / distinct-pair
///     counters (the group obeys the dependency iff ny * nz == np).
///
/// The full-sweep path stays the differential reference engine
/// (tests/verify_property_test.cc asserts verdict + witness agreement at
/// every cursor position of randomized append/merge/kill traces).
///
/// ## Contract
///
/// `Watch` / `CatchUp` / the query methods require the workspace to be
/// quiescent (no stale tuples) — the same contract as
/// `InternedWorkspace::Satisfies`. Between calls the workspace may mutate
/// freely (appends, chase rounds with merges); the verifier needs no
/// notification beyond the feed. Watching the same dependency twice
/// returns the same WatchId (dedup by structural equality), so candidate
/// sweeps that revisit lattice levels reuse watcher state.
///
/// ## Compaction and memory
///
/// The verifier registers a feed cursor with the workspace (released on
/// destruction), so ordinary `CompactFeed` calls never trim events it has
/// not replayed. If a *forced* trim (`TrimFeedTo`) strands its cursor
/// behind the compaction horizon anyway, CatchUp does not abort: it
/// rebuilds that relation's counters by re-applying every slot from the
/// alive ranks (all update paths are idempotent given their "what I
/// counted" memory) and counts the recovery in `stats().horizon_rebuilds`.
/// `MemoryBytes()` reports the watcher-side live state, and the budgeted
/// `CatchUp(Budget)` overload returns ResourceExhausted at the byte
/// ceiling mid-stream (resumable: a later CatchUp finishes the replay;
/// verdicts must not be read before one completes).
class IncrementalVerifier {
 public:
  struct Stats {
    std::uint64_t catch_ups = 0;        ///< CatchUp calls that saw events
    std::uint64_t events_consumed = 0;  ///< feed entries read
    std::uint64_t watcher_events = 0;   ///< (event, subscribed watcher) pairs
    std::uint64_t sweep_fallbacks = 0;  ///< FindViolation sweep delegations
    std::uint64_t horizon_rebuilds = 0; ///< relations rebuilt from ranks
  };

  /// The verifier holds `ws` by pointer; it must outlive the verifier.
  explicit IncrementalVerifier(const InternedWorkspace* ws);
  ~IncrementalVerifier();

  IncrementalVerifier(const IncrementalVerifier&) = delete;
  IncrementalVerifier& operator=(const IncrementalVerifier&) = delete;
  /// Not movable: the verifier owns a registered feed cursor and its
  /// watchers hold stable interior pointers.
  IncrementalVerifier(IncrementalVerifier&&) = delete;
  IncrementalVerifier& operator=(IncrementalVerifier&&) = delete;

  const InternedWorkspace& workspace() const { return *ws_; }
  const Stats& stats() const { return stats_; }
  std::size_t watch_count() const { return watchers_.size(); }

  /// Registers `dep` (CHECK-fails if invalid for the workspace's scheme)
  /// and builds its counters from the current workspace state. Returns the
  /// existing id if `dep` is already watched.
  WatchId Watch(const Dependency& dep);

  /// The dependency behind a WatchId.
  const Dependency& dependency(WatchId id) const;

  /// Consumes every unseen change-feed event, updating the affected
  /// watchers; O(delta). Called implicitly by the query methods, so
  /// explicit calls are only needed for timing control. A relation whose
  /// cursor fell behind the compaction horizon is rebuilt from alive
  /// ranks instead (O(relation), counted in stats().horizon_rebuilds).
  void CatchUp();

  /// Budgeted CatchUp: between relations, checks `budget.bytes` against
  /// the combined workspace + watcher live bytes (and consults the
  /// kWatcherGrow fault site), returning ResourceExhausted mid-stream.
  /// Resumable — a later CatchUp (either overload) finishes the replay —
  /// but verdicts are undefined until one completes without exhausting.
  Status CatchUp(const Budget& budget);

  /// Parallel budgeted CatchUp: partitions the watcher state into
  /// *ownership shards* — a counter with its composed-prefix sources, an
  /// IND's two trackers (and through them the watcher's link state), each
  /// Rd/Emvd watcher alone — and replays the pending feed windows one
  /// shard per pool task. No two tasks ever touch one open-addressed map
  /// or per-slot array, and each shard replays relations in ascending
  /// order with the sequential counters -> trackers -> watchers suborder,
  /// so the final watcher state is identical to CatchUp at any thread
  /// count. Budget gates (bytes, deadline, the kWatcherGrow fault site)
  /// are checkpointed once before the fan-out and polled per (shard,
  /// relation) during it; on any trip the pool drains and ONE
  /// ResourceExhausted is returned with *no* cursor advanced — every
  /// update path is idempotent per slot, so a later CatchUp (any
  /// overload) replays to the exact sequential state.
  Status CatchUpParallel(const Budget& budget, TaskPool& pool);

  /// Live logical bytes of watcher-side state: shared group counters and
  /// trackers, per-watcher link arrays and flags (see
  /// util/memory_budget.h; the workspace's own bytes are reported by
  /// InternedWorkspace::MemoryUsage).
  std::uint64_t MemoryBytes() const;

  /// Current verdict for one watched dependency; O(1) after CatchUp.
  bool Satisfies(WatchId id);

  /// True iff every watched dependency currently holds.
  bool AllSatisfied();

  /// Violation witness (same witness the full sweep reports — the sweep
  /// is delegated to when the counters say "violated", so this is
  /// O(relation) on a violation but O(1) on satisfaction).
  std::optional<IdViolation> FindViolation(WatchId id);

 private:
  struct Watcher;
  struct FdWatcher;
  struct IndWatcher;
  struct RdWatcher;
  struct EmvdWatcher;
  struct GroupCounter;
  struct GroupTracker;

  /// What a column set's grouping looks like to a consumer: the alive
  /// distinct-group count and the per-slot group ids — served either by a
  /// workspace partition (width <= 1) or by a composed GroupCounter.
  struct CountSource {
    const std::uint32_t* alive = nullptr;
    const std::vector<std::uint32_t>* groups = nullptr;
  };

  const InternedWorkspace::Partition* RegisterColset(
      RelId rel, std::vector<AttrId> cols);
  /// The grouping of `rel` by the sorted attribute set `cols`, composed
  /// recursively (prefix x last column); created on first use, then
  /// maintained from the feed. `cols` must be sorted and duplicate-free.
  CountSource RegisterCountSet(RelId rel, std::vector<AttrId> cols);
  /// The shared alive-group tracker of `rel` projected on the column
  /// *sequence* `cols` (order significant — it names the IND key link);
  /// created on first use, maintained from the feed, shared by every IND
  /// side over the same (rel, cols).
  GroupTracker* RegisterTracker(RelId rel, const std::vector<AttrId>& cols);
  void Subscribe(RelId rel, WatchId id);
  /// Replays `rel`'s retained feed suffix from cursor_[rel] (or rebuilds
  /// from alive ranks when the cursor is behind the horizon) and advances
  /// the cursor.
  void CatchUpRelation(RelId rel);

  /// One CatchUpParallel ownership shard: the connected component of
  /// counters (linked through composed-prefix sources), trackers (linked
  /// through shared IndWatchers), and feed-subscribed watchers (always
  /// singletons) that no other task may touch. Lists preserve creation /
  /// subscription order so a shard's replay is the sequential replay
  /// restricted to its members.
  struct CatchUpShard {
    std::vector<GroupCounter*> counters;
    std::vector<GroupTracker*> trackers;
    std::vector<std::pair<RelId, WatchId>> watchers;
  };
  /// (Re)derives catchup_shards_ when Watch added state since last time.
  void BuildCatchUpShards();
  void ReplayShardRelation(const CatchUpShard& shard, RelId rel,
                           std::uint64_t cursor, bool rebuild);

  const InternedWorkspace* ws_;
  std::vector<std::unique_ptr<Watcher>> watchers_;
  std::unordered_map<Dependency, WatchId, DependencyHash> index_;
  std::vector<std::unique_ptr<GroupCounter>> counters_;
  std::map<std::pair<RelId, std::vector<AttrId>>, GroupCounter*>
      counter_index_;
  std::vector<std::unique_ptr<GroupTracker>> trackers_;
  std::map<std::pair<RelId, std::vector<AttrId>>, GroupTracker*>
      tracker_index_;
  std::vector<std::vector<WatchId>> by_rel_;  ///< feed subscribers per rel
  /// Creation order == composition order: a counter's sources precede it,
  /// so replaying a delta counter-by-counter is topologically sound.
  std::vector<std::vector<GroupCounter*>> counters_by_rel_;
  std::vector<std::vector<GroupTracker*>> trackers_by_rel_;
  std::vector<std::uint64_t> cursor_;         ///< feed cursor per rel
  InternedWorkspace::FeedCursorId feed_cursor_ = 0;  ///< pins compaction
  Stats stats_;
  /// Cached CatchUpParallel topology; rebuilt when the counts below drift
  /// from the live containers (Watch only ever adds).
  std::vector<CatchUpShard> catchup_shards_;
  std::size_t shard_watchers_ = SIZE_MAX;
  std::size_t shard_counters_ = 0;
  std::size_t shard_trackers_ = 0;
};

/// Watcher-backed analogue of core/satisfies.h `ObeysExactly`: watches
/// every universe member (deduped against whatever the verifier already
/// watches) and checks that exactly the `expected` ones hold. Produces the
/// same diagnostic strings as the sweep version, so the two are drop-in
/// interchangeable for the Armstrong builder. Cost: O(delta + universe)
/// per call instead of O(universe * relation).
std::optional<std::string> ObeysExactlyWatched(
    IncrementalVerifier& verifier, const std::vector<Dependency>& universe,
    const std::vector<Dependency>& expected);

/// Core of ObeysExactlyWatched for callers that keep the WatchIds across
/// rounds (the ArmstrongSession): `expected[i]` says whether universe[i]
/// must hold; re-checks are pure counter reads with no per-member lookup.
std::optional<std::string> ObeysExactlyWatchedIds(
    IncrementalVerifier& verifier, const std::vector<Dependency>& universe,
    const std::vector<bool>& expected, const std::vector<WatchId>& ids);

}  // namespace ccfp

#endif  // CCFP_VERIFY_VERIFIER_H_
