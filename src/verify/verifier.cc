#include "verify/verifier.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "core/tuple.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/memory_budget.h"
#include "util/strings.h"

namespace ccfp {

namespace {

/// "No group" sentinel shared with the workspace partitions; doubles as
/// the "slot not counted" marker in per-slot seen arrays.
constexpr std::uint32_t kNone = InternedWorkspace::kNoGroup;

void EnsureGroups(std::vector<std::uint32_t>& v, std::size_t n) {
  if (v.size() < n) v.resize(n, kNone);
}

void EnsureCounts(std::vector<std::uint32_t>& v, std::size_t n) {
  if (v.size() < n) v.resize(n, 0);
}

std::vector<AttrId> SortedUnique(std::vector<AttrId> cols) {
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

void BuildKey(const IdTuple& t, const std::vector<AttrId>& cols,
              IdTuple& key) {
  key.clear();
  for (AttrId c : cols) key.push_back(t[c]);
}

/// Group named by `key` in `p`, or kNone. Tombstoned groups still resolve
/// — the link is structural (key -> id); alive-ness is the caller's
/// watcher-side count.
std::uint32_t GroupOfKey(const InternedWorkspace::Partition& p,
                         const IdTuple& key) {
  auto it = p.key_to_group.find(key);
  return it == p.key_to_group.end() ? kNone : it->second;
}

/// Open-addressed uint64 -> uint32 map for the group counters' hot path
/// (one op per event): linear probing, power-of-two capacity, insert-only
/// (group ids are never recycled — a vacated group keeps its id as a
/// tombstone, exactly like the workspace partitions), several times
/// cheaper than std::unordered_map here. No valid packed key is all-ones
/// (that is pack(kNoGroup, kNoGroup), the dead marker), so it serves as
/// the empty slot marker.
class PairKeyMap {
 public:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  /// The id bound to `key`, inserting `next_id` on first sight. Sets
  /// `inserted` accordingly.
  std::uint32_t GetOrAssign(std::uint64_t key, std::uint32_t next_id,
                            bool* inserted) {
    if ((size_ + 1) * 4 >= slots_.size() * 3) Grow();
    std::size_t mask = slots_.size() - 1;
    std::size_t i = Mix(key) & mask;
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) {
        *inserted = false;
        return s.id;
      }
      if (s.key == kEmpty) {
        s.key = key;
        s.id = next_id;
        ++size_;
        *inserted = true;
        return next_id;
      }
      i = (i + 1) & mask;
    }
  }

  /// Logical bytes of the slot table (the map is its only allocation).
  std::uint64_t bytes() const { return slots_.size() * sizeof(Slot); }

 private:
  struct Slot {
    std::uint64_t key = kEmpty;
    std::uint32_t id = 0;
  };

  static std::uint64_t Mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    return x;
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(std::max<std::size_t>(16, old.size() * 2), Slot{});
    std::size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.key == kEmpty) continue;
      std::size_t i = Mix(s.key) & mask;
      while (slots_[i].key != kEmpty) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_ = std::vector<Slot>(16);
  std::size_t size_ = 0;
};

}  // namespace

/// The grouping of one relation by a sorted attribute set S, composed as
/// (prefix of S) x (last column of S): a dense stable group id per alive
/// distinct (source-group, source-group) id pair, plus per-group alive
/// sizes and the alive-group count |pi_S|. Sources are the workspace's
/// singleton partitions or other GroupCounters (the recursion bottoms out
/// at width 1), so no projection tuple is ever hashed here — an event
/// costs two array reads and one integer-map op. The per-slot `group_of`
/// doubles as the "what I counted" memory that makes replays idempotent
/// and lets merges/kills decrement exactly what was counted, and as the
/// group source for wider counters stacked on top.
struct IncrementalVerifier::GroupCounter {
  RelId rel = 0;
  CountSource a, b;
  std::vector<std::uint32_t> group_of;  ///< per slot; kNone = not counted
  PairKeyMap key_to_gid;
  std::vector<std::uint32_t> group_size;
  std::uint32_t group_count = 0;
  std::uint32_t alive_groups = 0;

  void Apply(std::uint32_t idx) {
    if (group_of.size() <= idx) group_of.resize(idx + 1, kNone);
    std::uint32_t g1 = (*a.groups)[idx];
    std::uint32_t g2 = (*b.groups)[idx];
    std::uint32_t now = kNone;
    if (g1 != kNone && g2 != kNone) {
      bool inserted = false;
      now = key_to_gid.GetOrAssign(PackIdPair(g1, g2), group_count,
                                   &inserted);
      if (inserted) {
        group_size.push_back(0);
        ++group_count;
      }
    }
    std::uint32_t was = group_of[idx];
    if (was == now) return;
    if (was != kNone && --group_size[was] == 0) --alive_groups;
    if (now != kNone && group_size[now]++ == 0) ++alive_groups;
    group_of[idx] = now;
  }

  void Init(const InternedWorkspace& ws) {
    std::uint32_t n = static_cast<std::uint32_t>(ws.size(rel));
    group_of.assign(n, kNone);
    for (std::uint32_t i = 0; i < n; ++i) Apply(i);
  }

  std::uint64_t bytes() const {
    return memory::VectorBytes(group_of) + memory::VectorBytes(group_size) +
           key_to_gid.bytes();
  }
};

/// The shared alive-group ledger of one (relation, column sequence): the
/// per-slot counted group and per-group alive member counts, held ONCE no
/// matter how many IND sides project these columns. Replaying the feed
/// through `Apply` fires born/died callbacks into the subscribed
/// IndWatchers exactly at 0 <-> 1 alive-count transitions — the only
/// events an IND verdict depends on — so the per-watcher footprint shrinks
/// from two O(relation) seen arrays per IND to O(groups) link arrays.
/// `slot_group` is the idempotence memory: Apply reads the final partition
/// group of a slot, so replaying a delta (or every slot, for a horizon
/// rebuild) moves each slot at most once and intermediate transitions
/// telescope away.
struct IncrementalVerifier::GroupTracker {
  struct Sub {
    IndWatcher* w = nullptr;
    bool is_lhs = false;
  };

  RelId rel = 0;
  const InternedWorkspace::Partition* p = nullptr;
  std::vector<std::uint32_t> slot_group;  ///< per slot; kNone = not counted
  std::vector<std::uint32_t> cnt;         ///< per group: alive members
  std::vector<Sub> subs;

  void Apply(const InternedWorkspace& ws, std::uint32_t idx);

  void Init(const InternedWorkspace& ws) {
    std::uint32_t n = static_cast<std::uint32_t>(ws.size(rel));
    slot_group.assign(n, kNone);
    for (std::uint32_t i = 0; i < n; ++i) Apply(ws, i);
  }

  std::uint64_t bytes() const {
    return memory::VectorBytes(slot_group) + memory::VectorBytes(cnt) +
           memory::VectorBytes(subs);
  }
};

/// ---------------------------------------------------------------------------
/// Watchers

struct IncrementalVerifier::Watcher {
  Dependency dep;

  explicit Watcher(Dependency d) : dep(std::move(d)) {}
  virtual ~Watcher() = default;

  /// Builds the counters from the current (quiescent) workspace state.
  virtual void Init(const InternedWorkspace& ws) = 0;
  /// Folds one change-feed event in. The partitions the watcher reads are
  /// refreshed before any event is delivered.
  virtual void OnEvent(const InternedWorkspace& ws, RelId rel,
                       const WorkspaceEvent& ev) = 0;
  virtual bool ok() const = 0;
  /// Live logical bytes of this watcher's private state (shared counters
  /// and trackers are accounted once, by the verifier).
  virtual std::uint64_t bytes() const { return 0; }
};

/// FD X -> Y via the refinement criterion: X -> Y holds iff |pi_X| ==
/// |pi_{X u Y}| (an X-group splitting across Y-groups is a violation).
/// Both counts come from shared count sources (workspace partitions or
/// composed GroupCounters), so this watcher subscribes to no events and
/// holds no per-slot state at all — a verdict is two loads.
struct IncrementalVerifier::FdWatcher : Watcher {
  const std::uint32_t* lhs_alive = nullptr;
  const std::uint32_t* comb_alive = nullptr;

  using Watcher::Watcher;
  void Init(const InternedWorkspace&) override {}
  void OnEvent(const InternedWorkspace&, RelId,
               const WorkspaceEvent&) override {}
  bool ok() const override { return *lhs_alive == *comb_alive; }
};

/// IND R[X] <= S[Y]: both sides read the shared GroupTrackers of
/// (R, X) and (S, Y); the watcher itself holds only the lazily resolved
/// 1:1 structural key link between lhs and rhs groups plus `missing`, the
/// count of alive lhs groups without an alive rhs witness (the IND holds
/// iff it is zero). Links are permanent: partition group ids are stable
/// and key -> group is injective, so a link resolved from either side
/// (whichever group is born later) never needs revisiting.
///
/// The degenerate self-IND R[X] <= R[X] is trivially satisfied and sharing
/// one tracker for both roles would double-count transitions, so it is
/// special-cased at Watch time: no trackers, `missing` stays 0.
struct IncrementalVerifier::IndWatcher : Watcher {
  Ind ind;
  bool trivial = false;  ///< R[X] <= R[X]: identical sides, always holds
  const InternedWorkspace::Partition* lhs_p = nullptr;
  const InternedWorkspace::Partition* rhs_p = nullptr;
  GroupTracker* lt = nullptr;
  GroupTracker* rt = nullptr;
  std::vector<std::uint32_t> l2r;  ///< lhs group -> same-key rhs group
  std::vector<std::uint32_t> r2l;  ///< rhs group -> same-key lhs group
  std::uint64_t missing = 0;
  IdTuple key;  ///< scratch

  IndWatcher(Dependency d, Ind i) : Watcher(std::move(d)), ind(std::move(i)) {}

  static std::uint32_t CntOf(const GroupTracker* t, std::uint32_t g) {
    return g < t->cnt.size() ? t->cnt[g] : 0;
  }

  std::uint32_t Witness(std::uint32_t g) const {
    return (g < l2r.size() && l2r[g] != kNone) ? CntOf(rt, l2r[g]) : 0;
  }

  /// Lhs group `g` went 0 -> 1 alive members (witnessed by slot `idx`).
  void OnLhsBorn(const InternedWorkspace& ws, std::uint32_t g,
                 std::uint32_t idx) {
    EnsureGroups(l2r, g + 1);
    if (l2r[g] == kNone) {
      BuildKey(ws.tuple(ind.lhs_rel, idx), ind.lhs, key);
      std::uint32_t h = GroupOfKey(*rhs_p, key);
      if (h != kNone) {
        l2r[g] = h;
        EnsureGroups(r2l, h + 1);
        r2l[h] = g;
      }
    }
    if (Witness(g) == 0) ++missing;
  }

  /// Lhs group `g` went 1 -> 0 alive members.
  void OnLhsDied(std::uint32_t g) {
    if (Witness(g) == 0) --missing;
  }

  /// Rhs group `h` went 0 -> 1 alive members (witnessed by slot `idx`).
  void OnRhsBorn(const InternedWorkspace& ws, std::uint32_t h,
                 std::uint32_t idx) {
    EnsureGroups(r2l, h + 1);
    if (r2l[h] == kNone) {
      BuildKey(ws.tuple(ind.rhs_rel, idx), ind.rhs, key);
      std::uint32_t g = GroupOfKey(*lhs_p, key);
      if (g != kNone) {
        r2l[h] = g;
        EnsureGroups(l2r, g + 1);
        l2r[g] = h;
      }
    }
    std::uint32_t g = r2l[h];
    if (g != kNone && CntOf(lt, g) > 0) --missing;  // witness went 0 -> 1
  }

  /// Rhs group `h` went 1 -> 0 alive members.
  void OnRhsDied(std::uint32_t h) {
    std::uint32_t g = h < r2l.size() ? r2l[h] : kNone;
    if (g != kNone && CntOf(lt, g) > 0) ++missing;  // witness went 1 -> 0
  }

  void Init(const InternedWorkspace& ws) override {
    if (trivial) return;
    // The shared trackers are already caught up (Watch aligns the cursors
    // first), so only the watcher-private links and `missing` need
    // building. Every alive lhs group has an alive slot whose current
    // projection is the group's key, so one scan resolves all links.
    std::uint32_t nl = static_cast<std::uint32_t>(ws.size(ind.lhs_rel));
    for (std::uint32_t i = 0; i < nl; ++i) {
      std::uint32_t g = lhs_p->group_of[i];
      if (g == kNone) continue;
      EnsureGroups(l2r, g + 1);
      if (l2r[g] != kNone) continue;
      BuildKey(ws.tuple(ind.lhs_rel, i), ind.lhs, key);
      std::uint32_t h = GroupOfKey(*rhs_p, key);
      if (h == kNone) continue;
      l2r[g] = h;
      EnsureGroups(r2l, h + 1);
      r2l[h] = g;
    }
    for (std::uint32_t g = 0;
         g < static_cast<std::uint32_t>(lt->cnt.size()); ++g) {
      if (lt->cnt[g] > 0 && Witness(g) == 0) ++missing;
    }
  }

  // Transitions arrive through the trackers' callbacks, not the feed.
  void OnEvent(const InternedWorkspace&, RelId,
               const WorkspaceEvent&) override {}

  bool ok() const override { return missing == 0; }

  std::uint64_t bytes() const override {
    return memory::VectorBytes(l2r) + memory::VectorBytes(r2l) +
           memory::VectorBytes(key);
  }
};

void IncrementalVerifier::GroupTracker::Apply(const InternedWorkspace& ws,
                                              std::uint32_t idx) {
  if (slot_group.size() <= idx) slot_group.resize(idx + 1, kNone);
  std::uint32_t now = p->group_of[idx];
  std::uint32_t was = slot_group[idx];
  if (was == now) return;
  if (was != kNone && --cnt[was] == 0) {
    for (const Sub& s : subs) {
      if (s.is_lhs) {
        s.w->OnLhsDied(was);
      } else {
        s.w->OnRhsDied(was);
      }
    }
  }
  if (now != kNone) {
    EnsureCounts(cnt, now + 1);
    if (cnt[now]++ == 0) {
      for (const Sub& s : subs) {
        if (s.is_lhs) {
          s.w->OnLhsBorn(ws, now, idx);
        } else {
          s.w->OnRhsBorn(ws, now, idx);
        }
      }
    }
  }
  slot_group[idx] = now;
}

/// RD: per-slot violation flags; no partitions at all.
struct IncrementalVerifier::RdWatcher : Watcher {
  Rd rd;
  /// Per slot: 0 = not counted, 1 = counted and obeying, 2 = counted and
  /// violating.
  std::vector<std::uint8_t> state;
  std::uint64_t violators = 0;

  RdWatcher(Dependency d, Rd r) : Watcher(std::move(d)), rd(std::move(r)) {}

  bool Violates(const IdTuple& t) const {
    for (std::size_t k = 0; k < rd.lhs.size(); ++k) {
      if (t[rd.lhs[k]] != t[rd.rhs[k]]) return true;
    }
    return false;
  }

  void Set(std::uint32_t idx, std::uint8_t next) {
    if (state[idx] == 2) --violators;
    if (next == 2) ++violators;
    state[idx] = next;
  }

  void Init(const InternedWorkspace& ws) override {
    std::uint32_t n = static_cast<std::uint32_t>(ws.size(rd.rel));
    state.assign(n, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!ws.alive(rd.rel, i)) continue;
      Set(i, Violates(ws.tuple(rd.rel, i)) ? 2 : 1);
    }
  }

  void OnEvent(const InternedWorkspace& ws, RelId,
               const WorkspaceEvent& ev) override {
    if (state.size() < ws.size(rd.rel)) state.resize(ws.size(rd.rel), 0);
    if (ev.kind == WorkspaceEventKind::kKill ||
        !ws.alive(rd.rel, ev.idx)) {
      Set(ev.idx, 0);
      return;
    }
    Set(ev.idx, Violates(ws.tuple(rd.rel, ev.idx)) ? 2 : 1);
  }

  bool ok() const override { return violators == 0; }

  std::uint64_t bytes() const override {
    return memory::VectorBytes(state);
  }
};

/// EMVD X ->> Y | Z (MVDs are converted at Watch time): per X-group
/// counts of distinct XY groups (ny), distinct XZ groups (nz), and
/// distinct (XY, XZ) pairs (np); the group obeys the dependency iff
/// ny * nz == np (see model_check::SatisfiesEmvdOn for the sweep analogue).
struct IncrementalVerifier::EmvdWatcher : Watcher {
  RelId rel = 0;
  std::vector<AttrId> xy, xz;
  const InternedWorkspace::Partition* x_p = nullptr;
  const InternedWorkspace::Partition* xy_p = nullptr;
  const InternedWorkspace::Partition* xz_p = nullptr;
  std::vector<std::uint32_t> seen_x, seen_xy, seen_xz;  ///< per slot
  std::vector<std::uint32_t> ycnt, zcnt;  ///< per xy / xz group: members
  struct XStat {
    std::uint32_t ny = 0, nz = 0;
    std::uint64_t np = 0;
    bool bad = false;
  };
  std::vector<XStat> xs;  ///< per x group
  std::unordered_map<std::uint64_t, std::uint32_t> pair_cnt;
  std::uint64_t violated = 0;

  EmvdWatcher(Dependency d, RelId r, const std::vector<AttrId>& x,
              const std::vector<AttrId>& y, const std::vector<AttrId>& z)
      : Watcher(std::move(d)),
        rel(r),
        xy(AppendDistinctAttrs(x, y)),
        xz(AppendDistinctAttrs(x, z)) {}

  void Recheck(std::uint32_t gx) {
    XStat& s = xs[gx];
    bool bad = static_cast<std::uint64_t>(s.ny) * s.nz != s.np;
    if (bad != s.bad) {
      s.bad = bad;
      violated += bad ? 1 : -1;
    }
  }

  void Add(std::uint32_t gx, std::uint32_t gy, std::uint32_t gz) {
    if (xs.size() <= gx) xs.resize(gx + 1);
    EnsureCounts(ycnt, gy + 1);
    EnsureCounts(zcnt, gz + 1);
    // XY refines X, so gy (and gz, and the pair) belong to exactly one X
    // group — the caller's gx — and Remove passes the same one back.
    if (ycnt[gy]++ == 0) ++xs[gx].ny;
    if (zcnt[gz]++ == 0) ++xs[gx].nz;
    if (pair_cnt[PackIdPair(gy, gz)]++ == 0) ++xs[gx].np;
    Recheck(gx);
  }

  void Remove(std::uint32_t gx, std::uint32_t gy, std::uint32_t gz) {
    if (--ycnt[gy] == 0) --xs[gx].ny;
    if (--zcnt[gz] == 0) --xs[gx].nz;
    auto it = pair_cnt.find(PackIdPair(gy, gz));
    if (--it->second == 0) {
      pair_cnt.erase(it);
      --xs[gx].np;
    }
    Recheck(gx);
  }

  void Apply(const WorkspaceEvent& ev) {
    std::uint32_t idx = ev.idx;
    std::uint32_t gx = x_p->group_of[idx];
    std::uint32_t gy = gx == kNone ? kNone : xy_p->group_of[idx];
    std::uint32_t gz = gx == kNone ? kNone : xz_p->group_of[idx];
    if (seen_x[idx] == gx && seen_xy[idx] == gy && seen_xz[idx] == gz) {
      return;
    }
    if (seen_x[idx] != kNone) {
      Remove(seen_x[idx], seen_xy[idx], seen_xz[idx]);
    }
    if (gx != kNone) Add(gx, gy, gz);
    seen_x[idx] = gx;
    seen_xy[idx] = gy;
    seen_xz[idx] = gz;
  }

  void Init(const InternedWorkspace& ws) override {
    std::uint32_t n = static_cast<std::uint32_t>(ws.size(rel));
    EnsureGroups(seen_x, n);
    EnsureGroups(seen_xy, n);
    EnsureGroups(seen_xz, n);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint32_t gx = x_p->group_of[i];
      if (gx == kNone) continue;
      Add(gx, xy_p->group_of[i], xz_p->group_of[i]);
      seen_x[i] = gx;
      seen_xy[i] = xy_p->group_of[i];
      seen_xz[i] = xz_p->group_of[i];
    }
  }

  void OnEvent(const InternedWorkspace& ws, RelId,
               const WorkspaceEvent& ev) override {
    std::size_t n = ws.size(rel);
    EnsureGroups(seen_x, n);
    EnsureGroups(seen_xy, n);
    EnsureGroups(seen_xz, n);
    Apply(ev);
  }

  bool ok() const override { return violated == 0; }

  std::uint64_t bytes() const override {
    return memory::VectorBytes(seen_x) + memory::VectorBytes(seen_xy) +
           memory::VectorBytes(seen_xz) + memory::VectorBytes(ycnt) +
           memory::VectorBytes(zcnt) + memory::VectorBytes(xs) +
           static_cast<std::uint64_t>(pair_cnt.size()) *
               (sizeof(std::pair<std::uint64_t, std::uint32_t>) +
                memory::kHashNodeOverhead);
  }
};

/// ---------------------------------------------------------------------------
/// Verifier

IncrementalVerifier::IncrementalVerifier(const InternedWorkspace* ws)
    : ws_(ws),
      by_rel_(ws->scheme().size()),
      counters_by_rel_(ws->scheme().size()),
      trackers_by_rel_(ws->scheme().size()),
      cursor_(ws->scheme().size(), 0) {
  // Watchers created later initialize from current state; everything that
  // already happened is their baseline, not a delta to replay. The
  // registered cursor tells the workspace the same thing, so compaction
  // is never pinned behind events this verifier will never read.
  feed_cursor_ = ws_->RegisterFeedCursor();
  for (RelId rel = 0; rel < ws_->scheme().size(); ++rel) {
    cursor_[rel] = ws_->EventCount(rel);
    ws_->AdvanceFeedCursor(feed_cursor_, rel, cursor_[rel]);
  }
}

IncrementalVerifier::~IncrementalVerifier() {
  ws_->ReleaseFeedCursor(feed_cursor_);
}

const InternedWorkspace::Partition* IncrementalVerifier::RegisterColset(
    RelId rel, std::vector<AttrId> cols) {
  return &ws_->partition(rel, cols);
}

IncrementalVerifier::CountSource IncrementalVerifier::RegisterCountSet(
    RelId rel, std::vector<AttrId> cols) {
  if (cols.size() <= 1) {
    // The recursion bottoms out at the workspace's own partitions (the
    // only place a projection is hashed, and only one id wide).
    const InternedWorkspace::Partition* p = RegisterColset(rel, cols);
    return CountSource{&p->alive_groups, &p->group_of};
  }
  auto key = std::make_pair(rel, std::move(cols));
  auto it = counter_index_.find(key);
  if (it != counter_index_.end()) {
    GroupCounter* gc = it->second;
    return CountSource{&gc->alive_groups, &gc->group_of};
  }
  // (prefix x last column), recursively — every prefix set is itself a
  // shared counter, so FDs over overlapping attribute sets reuse layers.
  std::vector<AttrId> prefix(key.second.begin(), key.second.end() - 1);
  std::vector<AttrId> last = {key.second.back()};
  auto gc = std::make_unique<GroupCounter>();
  gc->rel = rel;
  gc->a = RegisterCountSet(rel, std::move(prefix));
  gc->b = RegisterCountSet(rel, std::move(last));
  gc->Init(*ws_);
  GroupCounter* raw = gc.get();
  counters_.push_back(std::move(gc));
  counters_by_rel_[rel].push_back(raw);
  counter_index_.emplace(std::move(key), raw);
  return CountSource{&raw->alive_groups, &raw->group_of};
}

IncrementalVerifier::GroupTracker* IncrementalVerifier::RegisterTracker(
    RelId rel, const std::vector<AttrId>& cols) {
  auto key = std::make_pair(rel, cols);
  auto it = tracker_index_.find(key);
  if (it != tracker_index_.end()) return it->second;
  auto gt = std::make_unique<GroupTracker>();
  gt->rel = rel;
  gt->p = RegisterColset(rel, cols);
  gt->Init(*ws_);  // no subscribers yet: no callbacks fire
  GroupTracker* raw = gt.get();
  trackers_.push_back(std::move(gt));
  trackers_by_rel_[rel].push_back(raw);
  tracker_index_.emplace(std::move(key), raw);
  return raw;
}

void IncrementalVerifier::Subscribe(RelId rel, WatchId id) {
  by_rel_[rel].push_back(id);
}

WatchId IncrementalVerifier::Watch(const Dependency& dep) {
  auto it = index_.find(dep);
  if (it != index_.end()) return it->second;
  Status st = Validate(ws_->scheme(), dep);
  CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
  // Align the cursors first: the new watcher's Init reads current state,
  // so pending events must not be replayed into it later.
  CatchUp();
  WatchId id = watchers_.size();
  switch (dep.kind()) {
    case DependencyKind::kFd: {
      auto w = std::make_unique<FdWatcher>(dep);
      const Fd& fd = dep.fd();
      std::vector<AttrId> lhs = SortedUnique(fd.lhs);
      std::vector<AttrId> comb = lhs;
      comb.insert(comb.end(), fd.rhs.begin(), fd.rhs.end());
      w->lhs_alive = RegisterCountSet(fd.rel, std::move(lhs)).alive;
      w->comb_alive =
          RegisterCountSet(fd.rel, SortedUnique(std::move(comb))).alive;
      watchers_.push_back(std::move(w));
      break;
    }
    case DependencyKind::kInd: {
      const Ind& ind = dep.ind();
      auto w = std::make_unique<IndWatcher>(dep, ind);
      if (ind.lhs_rel == ind.rhs_rel && ind.lhs == ind.rhs) {
        // Both sides are the same projection: trivially satisfied, and
        // sharing one tracker for both roles would double-count.
        w->trivial = true;
        watchers_.push_back(std::move(w));
        break;
      }
      w->lhs_p = RegisterColset(ind.lhs_rel, ind.lhs);
      w->rhs_p = RegisterColset(ind.rhs_rel, ind.rhs);
      w->lt = RegisterTracker(ind.lhs_rel, ind.lhs);
      w->rt = RegisterTracker(ind.rhs_rel, ind.rhs);
      w->lt->subs.push_back(GroupTracker::Sub{w.get(), true});
      w->rt->subs.push_back(GroupTracker::Sub{w.get(), false});
      watchers_.push_back(std::move(w));
      break;
    }
    case DependencyKind::kRd: {
      auto w = std::make_unique<RdWatcher>(dep, dep.rd());
      Subscribe(dep.rd().rel, id);
      watchers_.push_back(std::move(w));
      break;
    }
    case DependencyKind::kEmvd: {
      const Emvd& e = dep.emvd();
      auto w = std::make_unique<EmvdWatcher>(dep, e.rel, e.x, e.y, e.z);
      w->x_p = RegisterColset(e.rel, e.x);
      w->xy_p = RegisterColset(e.rel, w->xy);
      w->xz_p = RegisterColset(e.rel, w->xz);
      Subscribe(e.rel, id);
      watchers_.push_back(std::move(w));
      break;
    }
    case DependencyKind::kMvd: {
      const Mvd& m = dep.mvd();
      auto w = std::make_unique<EmvdWatcher>(
          dep, m.rel, m.x, m.y, MvdComplement(ws_->scheme(), m));
      w->x_p = RegisterColset(m.rel, m.x);
      w->xy_p = RegisterColset(m.rel, w->xy);
      w->xz_p = RegisterColset(m.rel, w->xz);
      Subscribe(m.rel, id);
      watchers_.push_back(std::move(w));
      break;
    }
  }
  watchers_.back()->Init(*ws_);
  index_.emplace(dep, id);
  return id;
}

const Dependency& IncrementalVerifier::dependency(WatchId id) const {
  return watchers_[id]->dep;
}

void IncrementalVerifier::CatchUpRelation(RelId rel) {
  std::uint64_t end = ws_->EventCount(rel);
  if (cursor_[rel] == end) return;
  // Partitions first: event handlers read group ids for event slots, so
  // every cached partition over the relation must cover the store.
  ws_->ExtendAllPartitions(rel);
  const std::vector<WatchId>& subs = by_rel_[rel];
  const std::vector<GroupCounter*>& gcs = counters_by_rel_[rel];
  const std::vector<GroupTracker*>& gts = trackers_by_rel_[rel];
  std::uint64_t base = ws_->FeedBase(rel);
  if (cursor_[rel] < base) {
    // A forced trim (TrimFeedTo) stranded this cursor behind the
    // compaction horizon. No abort: every update path is idempotent given
    // its per-slot "what I counted" memory, so re-applying all slots
    // against the caught-up partitions recovers exactly the missed
    // transitions — lost intermediate events telescope away.
    std::uint32_t n = static_cast<std::uint32_t>(ws_->size(rel));
    for (GroupCounter* gc : gcs) {
      for (std::uint32_t i = 0; i < n; ++i) gc->Apply(i);
    }
    for (GroupTracker* gt : gts) {
      for (std::uint32_t i = 0; i < n; ++i) gt->Apply(*ws_, i);
    }
    WorkspaceEvent ev{WorkspaceEventKind::kRewrite, 0};
    for (WatchId w : subs) {
      for (std::uint32_t i = 0; i < n; ++i) {
        ev.idx = i;
        watchers_[w]->OnEvent(*ws_, rel, ev);
      }
    }
    ++stats_.horizon_rebuilds;
  } else {
    const std::vector<WorkspaceEvent>& log = ws_->events(rel);
    std::uint64_t from = cursor_[rel] - base;
    stats_.events_consumed += log.size() - from;
    // Consumer-outer iteration: each counter / tracker / watcher replays
    // the whole delta with its own state hot instead of being re-fetched
    // per event, and counters run in creation order so composed layers
    // read already-caught-up sources. Trackers run after counters and
    // before the subscribed watchers.
    for (GroupCounter* gc : gcs) {
      for (std::uint64_t i = from; i < log.size(); ++i) {
        ++stats_.watcher_events;
        gc->Apply(log[i].idx);
      }
    }
    for (GroupTracker* gt : gts) {
      for (std::uint64_t i = from; i < log.size(); ++i) {
        ++stats_.watcher_events;
        gt->Apply(*ws_, log[i].idx);
      }
    }
    for (WatchId w : subs) {
      for (std::uint64_t i = from; i < log.size(); ++i) {
        ++stats_.watcher_events;
        watchers_[w]->OnEvent(*ws_, rel, log[i]);
      }
    }
  }
  cursor_[rel] = end;
  ws_->AdvanceFeedCursor(feed_cursor_, rel, end);
  ++stats_.catch_ups;
}

void IncrementalVerifier::CatchUp() {
  for (RelId rel = 0; rel < ws_->scheme().size(); ++rel) {
    CatchUpRelation(rel);
  }
}

Status IncrementalVerifier::CatchUp(const Budget& budget) {
  for (RelId rel = 0; rel < ws_->scheme().size(); ++rel) {
    if (cursor_[rel] == ws_->EventCount(rel)) continue;
    if (FaultFires(FaultSite::kWatcherGrow)) {
      return Status::ResourceExhausted(
          "injected watcher growth failure during CatchUp");
    }
    if (budget.Expired()) {
      return Status::ResourceExhausted("verifier CatchUp deadline exceeded");
    }
    if (budget.bytes != UINT64_MAX &&
        ws_->MemoryUsage().Total() + MemoryBytes() > budget.bytes) {
      return Status::ResourceExhausted("verifier byte ceiling exceeded");
    }
    CatchUpRelation(rel);
  }
  return Status::OK();
}

void IncrementalVerifier::BuildCatchUpShards() {
  if (shard_watchers_ == watchers_.size() &&
      shard_counters_ == counters_.size() &&
      shard_trackers_ == trackers_.size()) {
    return;
  }
  shard_watchers_ = watchers_.size();
  shard_counters_ = counters_.size();
  shard_trackers_ = trackers_.size();

  // Node space: counters, then trackers, then the feed-subscribed
  // watchers (Rd/Emvd). FdWatchers replay nothing (pure count reads) and
  // IndWatchers are driven entirely through their trackers' callbacks, so
  // neither gets a node of its own.
  std::size_t nc = counters_.size();
  std::size_t nt = trackers_.size();
  std::unordered_map<WatchId, std::size_t> watcher_node;
  for (const std::vector<WatchId>& subs : by_rel_) {
    for (WatchId id : subs) {
      watcher_node.emplace(id, nc + nt + watcher_node.size());
    }
  }
  std::vector<std::size_t> parent(nc + nt + watcher_node.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  auto unite = [&](std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  };

  // A composed counter and its counter sources must share a task (the
  // source's group_of array is read mid-replay). Sources are identified
  // by the group vector they expose.
  std::unordered_map<const std::vector<std::uint32_t>*, std::size_t>
      groups_node;
  for (std::size_t i = 0; i < nc; ++i) {
    groups_node.emplace(&counters_[i]->group_of, i);
  }
  for (std::size_t i = 0; i < nc; ++i) {
    for (const CountSource* src : {&counters_[i]->a, &counters_[i]->b}) {
      auto it = groups_node.find(src->groups);
      if (it != groups_node.end()) unite(i, it->second);
    }
  }
  // An IND's two trackers fire callbacks into one shared link/missing
  // state, so they (and with them the watcher) must share a task.
  for (const std::unique_ptr<Watcher>& w : watchers_) {
    if (w->dep.kind() != DependencyKind::kInd) continue;
    const IndWatcher* iw = static_cast<const IndWatcher*>(w.get());
    if (iw->trivial) continue;
    std::size_t lt_node = 0, rt_node = 0;
    for (std::size_t t = 0; t < nt; ++t) {
      if (trackers_[t].get() == iw->lt) lt_node = nc + t;
      if (trackers_[t].get() == iw->rt) rt_node = nc + t;
    }
    unite(lt_node, rt_node);
  }

  // Components -> shards, ordered by their smallest node id so the shard
  // list (and with it the serial epilogue) is deterministic.
  catchup_shards_.clear();
  std::unordered_map<std::size_t, std::size_t> shard_of_root;
  auto shard_of = [&](std::size_t node) -> CatchUpShard& {
    std::size_t root = find(node);
    auto [it, inserted] =
        shard_of_root.emplace(root, catchup_shards_.size());
    if (inserted) catchup_shards_.emplace_back();
    return catchup_shards_[it->second];
  };
  for (std::size_t i = 0; i < nc; ++i) {
    shard_of(i).counters.push_back(counters_[i].get());
  }
  for (std::size_t t = 0; t < nt; ++t) {
    shard_of(nc + t).trackers.push_back(trackers_[t].get());
  }
  for (RelId rel = 0; rel < static_cast<RelId>(by_rel_.size()); ++rel) {
    for (WatchId id : by_rel_[rel]) {
      shard_of(watcher_node.at(id)).watchers.emplace_back(rel, id);
    }
  }
}

void IncrementalVerifier::ReplayShardRelation(const CatchUpShard& shard,
                                              RelId rel, std::uint64_t cursor,
                                              bool rebuild) {
  if (rebuild) {
    std::uint32_t n = static_cast<std::uint32_t>(ws_->size(rel));
    for (GroupCounter* gc : shard.counters) {
      if (gc->rel != rel) continue;
      for (std::uint32_t i = 0; i < n; ++i) gc->Apply(i);
    }
    for (GroupTracker* gt : shard.trackers) {
      if (gt->rel != rel) continue;
      for (std::uint32_t i = 0; i < n; ++i) gt->Apply(*ws_, i);
    }
    WorkspaceEvent ev{WorkspaceEventKind::kRewrite, 0};
    for (const auto& [wrel, w] : shard.watchers) {
      if (wrel != rel) continue;
      for (std::uint32_t i = 0; i < n; ++i) {
        ev.idx = i;
        watchers_[w]->OnEvent(*ws_, rel, ev);
      }
    }
    return;
  }
  const std::vector<WorkspaceEvent>& log = ws_->events(rel);
  std::uint64_t from = cursor - ws_->FeedBase(rel);
  for (GroupCounter* gc : shard.counters) {
    if (gc->rel != rel) continue;
    for (std::uint64_t i = from; i < log.size(); ++i) gc->Apply(log[i].idx);
  }
  for (GroupTracker* gt : shard.trackers) {
    if (gt->rel != rel) continue;
    for (std::uint64_t i = from; i < log.size(); ++i) {
      gt->Apply(*ws_, log[i].idx);
    }
  }
  for (const auto& [wrel, w] : shard.watchers) {
    if (wrel != rel) continue;
    for (std::uint64_t i = from; i < log.size(); ++i) {
      watchers_[w]->OnEvent(*ws_, rel, log[i]);
    }
  }
}

Status IncrementalVerifier::CatchUpParallel(const Budget& budget,
                                            TaskPool& pool) {
  std::size_t nrels = ws_->scheme().size();
  struct Window {
    std::uint64_t from = 0;
    std::uint64_t end = 0;
    bool rebuild = false;
    bool pending = false;
  };
  std::vector<Window> windows(nrels);
  bool any = false;
  for (RelId rel = 0; rel < nrels; ++rel) {
    std::uint64_t end = ws_->EventCount(rel);
    if (cursor_[rel] == end) continue;
    // The same gates as the sequential budgeted CatchUp, checkpointed
    // once before the fan-out (MemoryBytes walks state tasks will soon be
    // mutating, so the ceiling cannot be re-read mid-flight).
    if (FaultFires(FaultSite::kWatcherGrow)) {
      return Status::ResourceExhausted(
          "injected watcher growth failure during CatchUpParallel");
    }
    if (budget.Expired()) {
      return Status::ResourceExhausted(
          "verifier CatchUpParallel deadline exceeded");
    }
    if (budget.bytes != UINT64_MAX &&
        ws_->MemoryUsage().Total() + MemoryBytes() > budget.bytes) {
      return Status::ResourceExhausted("verifier byte ceiling exceeded");
    }
    // Partitions extended serially: event handlers read per-slot groups,
    // and the lazy extension mutates the shared partition cache.
    ws_->ExtendAllPartitions(rel);
    windows[rel] = Window{cursor_[rel], end,
                          cursor_[rel] < ws_->FeedBase(rel), true};
    any = true;
  }
  if (!any) return Status::OK();
  BuildCatchUpShards();

  std::atomic<bool> exhausted{false};
  pool.ParallelFor(catchup_shards_.size(), [&](std::size_t s) {
    const CatchUpShard& shard = catchup_shards_[s];
    for (RelId rel = 0; rel < nrels; ++rel) {
      if (!windows[rel].pending) continue;
      if (exhausted.load(std::memory_order_relaxed)) return;
      // Mid-fan-out exhaustion: the deadline and the injected fault site
      // are polled per (shard, relation); the first trip drains the pool.
      if (FaultFires(FaultSite::kWatcherGrow) || budget.Expired()) {
        exhausted.store(true, std::memory_order_relaxed);
        return;
      }
      ReplayShardRelation(shard, rel, windows[rel].from,
                          windows[rel].rebuild);
    }
  });
  if (exhausted.load(std::memory_order_relaxed)) {
    // No cursor moved: shards that already replayed are simply ahead, and
    // the idempotent per-slot memories make the later re-replay a no-op.
    return Status::ResourceExhausted(
        "verifier CatchUpParallel exhausted mid-fan-out (resumable)");
  }

  // Serial epilogue in relation order: cursors and stats identical to the
  // sequential engine's accounting.
  for (RelId rel = 0; rel < nrels; ++rel) {
    const Window& w = windows[rel];
    if (!w.pending) continue;
    if (w.rebuild) {
      ++stats_.horizon_rebuilds;
    } else {
      std::uint64_t events = w.end - w.from;
      stats_.events_consumed += events;
      stats_.watcher_events +=
          events * (counters_by_rel_[rel].size() +
                    trackers_by_rel_[rel].size() + by_rel_[rel].size());
    }
    cursor_[rel] = w.end;
    ws_->AdvanceFeedCursor(feed_cursor_, rel, w.end);
    ++stats_.catch_ups;
  }
  return Status::OK();
}

std::uint64_t IncrementalVerifier::MemoryBytes() const {
  std::uint64_t total = 0;
  for (const std::unique_ptr<GroupCounter>& gc : counters_) {
    total += gc->bytes();
  }
  for (const std::unique_ptr<GroupTracker>& gt : trackers_) {
    total += gt->bytes();
  }
  for (const std::unique_ptr<Watcher>& w : watchers_) {
    total += w->bytes();
  }
  return total;
}

bool IncrementalVerifier::Satisfies(WatchId id) {
  CCFP_CHECK(id < watchers_.size());
  CatchUp();
  return watchers_[id]->ok();
}

bool IncrementalVerifier::AllSatisfied() {
  CatchUp();
  for (const std::unique_ptr<Watcher>& w : watchers_) {
    if (!w->ok()) return false;
  }
  return true;
}

std::optional<IdViolation> IncrementalVerifier::FindViolation(WatchId id) {
  if (Satisfies(id)) return std::nullopt;
  ++stats_.sweep_fallbacks;
  // The counters said "violated"; the sweep engine extracts the exact
  // witness the differential reference would report.
  return ws_->FindViolation(watchers_[id]->dep);
}

std::optional<std::string> ObeysExactlyWatchedIds(
    IncrementalVerifier& verifier, const std::vector<Dependency>& universe,
    const std::vector<bool>& expected, const std::vector<WatchId>& ids) {
  verifier.CatchUp();
  const DatabaseScheme& scheme = verifier.workspace().scheme();
  for (std::size_t i = 0; i < universe.size(); ++i) {
    bool holds = verifier.Satisfies(ids[i]);
    if (holds == expected[i]) continue;
    return holds ? StrCat("database obeys ", universe[i].ToString(scheme),
                          " which is outside the expected set")
                 : StrCat("database violates ",
                          universe[i].ToString(scheme),
                          " which is inside the expected set");
  }
  return std::nullopt;
}

std::optional<std::string> ObeysExactlyWatched(
    IncrementalVerifier& verifier, const std::vector<Dependency>& universe,
    const std::vector<Dependency>& expected) {
  std::unordered_set<Dependency, DependencyHash> expected_set(
      expected.begin(), expected.end());
  std::vector<WatchId> ids;
  std::vector<bool> should;
  ids.reserve(universe.size());
  should.reserve(universe.size());
  for (const Dependency& dep : universe) {
    ids.push_back(verifier.Watch(dep));
    should.push_back(expected_set.count(dep) > 0);
  }
  return ObeysExactlyWatchedIds(verifier, universe, should, ids);
}

}  // namespace ccfp
