#ifndef CCFP_VERIFY_WITNESS_CACHE_H_
#define CCFP_VERIFY_WITNESS_CACHE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/database.h"
#include "core/dependency.h"
#include "core/schema.h"
#include "core/workspace.h"
#include "verify/verifier.h"

namespace ccfp {

/// A cache of *verified counterexample databases* over one fixed sigma.
///
/// A refutation found while deciding `sigma |= tau1` is evidence against
/// every later target it happens to violate: any finite database that
/// satisfies sigma and violates tau proves sigma does not imply tau —
/// under unrestricted AND finite semantics, for every fragment. The
/// ImplicationSolver keeps one of these per solver so repeated negative
/// queries over the same sigma become near-free replays instead of fresh
/// chase/search runs (open ROADMAP item; the same trick
/// CounterexampleOracle plays for the k-ary closure machinery, here with
/// incremental watchers instead of sweeps).
///
/// Each entry pins its database in a persistent InternedWorkspace with an
/// IncrementalVerifier watching sigma (verified satisfied on admission)
/// — probing a new target against an entry registers one watcher on the
/// already-interned data, and probing a repeated target is a counter
/// read.
///
/// ## Thread safety
///
/// Safe for concurrent readers and writers: all cache state sits behind
/// one mutex (probes mutate — Watch registers watchers — so there is no
/// read-only fast path to speak of), and the expensive part of an
/// admission (interning the candidate and verifying sigma on a private
/// workspace) runs *outside* the lock. A cache-wide generation counter,
/// stamped onto each entry at insertion, lets the admission re-validate
/// its duplicate scan after relocking: only entries inserted since the
/// scan (entry generation > the scan's snapshot) must be re-checked.
/// Refute hands back a shared_ptr so a hit stays alive even if the entry
/// is evicted the instant the lock drops.
class WitnessCache {
 public:
  struct Stats {
    std::uint64_t admitted = 0;   ///< entries accepted (sigma verified)
    std::uint64_t rejected = 0;   ///< candidates that failed sigma
    std::uint64_t evicted = 0;    ///< entries dropped at capacity
    std::uint64_t probes = 0;     ///< Refute calls
    std::uint64_t hits = 0;       ///< Refute calls answered from cache
    std::uint64_t misses = 0;     ///< Refute calls no entry answered
    /// Per-entry verifiers rebuilt because their watcher set hit the
    /// watch cap (see the constructor) — the bound on per-entry growth.
    std::uint64_t watcher_resets = 0;
    /// Entries dropped by EnforceByteCeiling (counted in `evicted` too).
    std::uint64_t byte_evictions = 0;
  };

  /// The full answer to "offer this database as a witness against
  /// `target`" (see Admit).
  struct AdmitOutcome {
    /// The database is resident after the call (newly inserted, or a
    /// duplicate whose recency was refreshed). Always false at capacity 0.
    bool admitted = false;
    /// The database satisfies sigma AND violates the target — the
    /// genuineness check callers need before attaching it as evidence.
    bool genuine = false;
  };

  /// `sigma` should be the solver's non-trivial members; `capacity` bounds
  /// the number of cached databases (least-recently-used evicted first —
  /// a hit or duplicate re-admission refreshes an entry's recency, so a
  /// witness that keeps refuting new targets stays resident while
  /// one-shot witnesses age out).
  ///
  /// `max_watches_per_entry` bounds the *per-entry* watcher growth: every
  /// distinct probed target registers one watcher on every cached entry,
  /// and the verifier has no unwatch, so an unbounded probe stream would
  /// otherwise grow every entry without limit. When an entry reaches the
  /// cap, its verifier is rebuilt fresh over sigma alone (cheap — the
  /// workspace's partitions are already compiled, and sigma's verdicts
  /// are re-established from them) and probed targets re-register on
  /// demand, trading the coldest watchers for bounded memory.
  WitnessCache(SchemePtr scheme, std::vector<Dependency> sigma,
               std::size_t capacity = 8,
               std::size_t max_watches_per_entry = 64);

  /// Snapshot of the counters (by value: safe against concurrent use).
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  /// Logical bytes of live cache state: per entry, the pinned workspace,
  /// the pinned heap Database copy, and the verifier's watcher state —
  /// the number EnforceByteCeiling compares against `Budget::bytes`.
  std::uint64_t MemoryBytes() const;

  /// Evicts coldest-first until MemoryBytes() <= `limit` (the solver
  /// calls this with the query's `Budget::bytes` ceiling so the cache is
  /// counted against the caller's live-state budget rather than growing
  /// beside it). May empty the cache entirely. Returns the number of
  /// entries dropped (service stats surface it per session).
  std::uint64_t EnforceByteCeiling(std::uint64_t limit);

  /// Offers `db` to the cache. The database is interned into a fresh
  /// workspace and sigma is verified through watchers; a candidate that
  /// fails sigma is rejected (and counted — callers treat that as "not a
  /// genuine counterexample"). A duplicate of a cached database is
  /// re-verified but not stored twice. The outcome carries both the
  /// residency answer and whether `db` genuinely refutes `target`.
  AdmitOutcome Admit(const Database& db, const Dependency& target);

  /// A cached database violating `target`, or null. Every cached entry
  /// satisfies sigma by construction, so a hit is a complete,
  /// already-verified refutation of `sigma |= target`. The pointer keeps
  /// the database alive independently of later evictions.
  std::shared_ptr<const Database> Refute(const Dependency& target);

 private:
  struct Entry {
    /// Set only when the entry is retained; verification runs on the
    /// interned `ws` copy alone. shared so Refute hits outlive eviction.
    std::shared_ptr<const Database> db;
    InternedWorkspace ws;
    /// Behind a unique_ptr so the watch-cap reset can rebuild it (the
    /// verifier itself is non-movable — it registers a feed cursor).
    std::unique_ptr<IncrementalVerifier> verifier;
    /// Cache generation at insertion (see the thread-safety note): an
    /// admission's post-verify re-scan only re-checks entries stamped
    /// after its pre-verify scan.
    std::uint64_t generation = 0;

    explicit Entry(SchemePtr scheme)
        : ws(std::move(scheme)),
          verifier(std::make_unique<IncrementalVerifier>(&ws)) {}
  };

  /// Moves entries_[i] to the back (most-recently-used position).
  void Touch(std::size_t i);
  /// The entry's verifier, rebuilt fresh over sigma when its watcher set
  /// has reached max_watches_per_entry (see the constructor).
  IncrementalVerifier& ProbeVerifier(Entry& e);
  /// Whether the entry's pinned database violates `target`, through its
  /// (possibly rebuilt) verifier. Requires mu_ held.
  bool EntryViolates(Entry& e, const Dependency& target);

  SchemePtr scheme_;
  std::vector<Dependency> sigma_;
  std::size_t capacity_;
  std::size_t max_watches_per_entry_;
  mutable std::mutex mu_;
  /// LRU order: front = coldest (next eviction), back = hottest.
  std::deque<std::unique_ptr<Entry>> entries_;
  /// Bumped on every insertion; stamps Entry::generation.
  std::uint64_t generation_ = 0;
  Stats stats_;
};

}  // namespace ccfp

#endif  // CCFP_VERIFY_WITNESS_CACHE_H_
