#include "verify/witness_cache.h"

#include <algorithm>
#include <utility>

namespace ccfp {

WitnessCache::WitnessCache(SchemePtr scheme, std::vector<Dependency> sigma,
                           std::size_t capacity,
                           std::size_t max_watches_per_entry)
    : scheme_(std::move(scheme)),
      sigma_(std::move(sigma)),
      capacity_(capacity),
      // The reset path re-registers sigma, so the cap must leave room for
      // sigma plus at least one probed target.
      max_watches_per_entry_(
          std::max(max_watches_per_entry, sigma_.size() + 1)) {}

void WitnessCache::Touch(std::size_t i) {
  if (i + 1 == entries_.size()) return;
  std::unique_ptr<Entry> e = std::move(entries_[i]);
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
  entries_.push_back(std::move(e));
}

IncrementalVerifier& WitnessCache::ProbeVerifier(Entry& e) {
  if (e.verifier->watch_count() >= max_watches_per_entry_) {
    // The watcher set has absorbed max_watches distinct targets; rebuild
    // it fresh over sigma alone. The pinned workspace (with its compiled
    // partitions) stays, so re-registering is the cheap part of the
    // original admission, and the verdicts are unchanged — only cold
    // per-target counters are dropped.
    e.verifier = std::make_unique<IncrementalVerifier>(&e.ws);
    for (const Dependency& dep : sigma_) e.verifier->Watch(dep);
    ++stats_.watcher_resets;
  }
  return *e.verifier;
}

bool WitnessCache::EntryViolates(Entry& e, const Dependency& target) {
  IncrementalVerifier& v = ProbeVerifier(e);
  return !v.Satisfies(v.Watch(target));
}

std::uint64_t WitnessCache::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& e : entries_) {
    MemoryBreakdown mb = e->ws.MemoryUsage();
    // The pinned heap Database copy mirrors the workspace's tuple store;
    // count it as a second tuple store rather than walking heap Values.
    total += mb.Total() + mb.tuple_store + e->verifier->MemoryBytes();
  }
  return total;
}

std::uint64_t WitnessCache::EnforceByteCeiling(std::uint64_t limit) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t dropped = 0;
  // Inline byte accounting (MemoryBytes would deadlock on mu_).
  auto bytes = [this]() {
    std::uint64_t total = 0;
    for (const auto& e : entries_) {
      MemoryBreakdown mb = e->ws.MemoryUsage();
      total += mb.Total() + mb.tuple_store + e->verifier->MemoryBytes();
    }
    return total;
  };
  while (!entries_.empty() && bytes() > limit) {
    entries_.pop_front();
    ++stats_.evicted;
    ++stats_.byte_evictions;
    ++dropped;
  }
  return dropped;
}

WitnessCache::AdmitOutcome WitnessCache::Admit(const Database& db,
                                               const Dependency& target) {
  AdmitOutcome out;
  std::uint64_t scan_generation = 0;
  {
    // Phase 1 (locked): identical witness already cached? Its sigma check
    // stands; answer the target probe from the existing entry's watchers
    // instead of re-interning (Materialize round-trips make duplicates
    // common), and refresh its recency — being re-offered is a use.
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      Entry* e = entries_[i].get();
      if (*e->db == db) {
        out.admitted = true;
        out.genuine = EntryViolates(*e, target);
        Touch(i);
        return out;
      }
    }
    scan_generation = generation_;
  }

  // Phase 2 (unlocked): the expensive part — intern the candidate into a
  // private workspace and verify sigma + the target through watchers.
  // Other threads admit and probe concurrently.
  auto entry = std::make_unique<Entry>(scheme_);
  entry->ws.AppendDatabase(db);
  bool sigma_ok = true;
  for (const Dependency& dep : sigma_) {
    if (!entry->verifier->Satisfies(entry->verifier->Watch(dep))) {
      sigma_ok = false;
      break;
    }
  }
  out.genuine =
      sigma_ok && !entry->verifier->Satisfies(entry->verifier->Watch(target));
  if (!sigma_ok) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    return out;
  }
  if (capacity_ == 0) return out;  // verify-only mode: nothing retained

  // Phase 3 (locked): re-validate the duplicate scan against entries
  // inserted since phase 1 (their generation stamp exceeds the snapshot),
  // then insert under capacity.
  std::lock_guard<std::mutex> lock(mu_);
  if (generation_ != scan_generation) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      Entry* e = entries_[i].get();
      if (e->generation > scan_generation && *e->db == db) {
        out.admitted = true;
        Touch(i);
        return out;
      }
    }
  }
  if (entries_.size() >= capacity_) {
    entries_.pop_front();
    ++stats_.evicted;
  }
  entry->db = std::make_shared<const Database>(db);  // copied when retained
  entry->generation = ++generation_;
  entries_.push_back(std::move(entry));
  ++stats_.admitted;
  out.admitted = true;
  return out;
}

std::shared_ptr<const Database> WitnessCache::Refute(
    const Dependency& target) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.probes;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (EntryViolates(*entries_[i], target)) {
      ++stats_.hits;
      Touch(i);
      return entries_.back()->db;
    }
  }
  ++stats_.misses;
  return nullptr;
}

}  // namespace ccfp
