#include "verify/witness_cache.h"

#include <algorithm>
#include <utility>

namespace ccfp {

WitnessCache::WitnessCache(SchemePtr scheme, std::vector<Dependency> sigma,
                           std::size_t capacity,
                           std::size_t max_watches_per_entry)
    : scheme_(std::move(scheme)),
      sigma_(std::move(sigma)),
      capacity_(capacity),
      // The reset path re-registers sigma, so the cap must leave room for
      // sigma plus at least one probed target.
      max_watches_per_entry_(
          std::max(max_watches_per_entry, sigma_.size() + 1)) {}

void WitnessCache::Touch(std::size_t i) {
  if (i + 1 == entries_.size()) return;
  std::unique_ptr<Entry> e = std::move(entries_[i]);
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
  entries_.push_back(std::move(e));
}

IncrementalVerifier& WitnessCache::ProbeVerifier(Entry& e) {
  if (e.verifier->watch_count() >= max_watches_per_entry_) {
    // The watcher set has absorbed max_watches distinct targets; rebuild
    // it fresh over sigma alone. The pinned workspace (with its compiled
    // partitions) stays, so re-registering is the cheap part of the
    // original admission, and the verdicts are unchanged — only cold
    // per-target counters are dropped.
    e.verifier = std::make_unique<IncrementalVerifier>(&e.ws);
    for (const Dependency& dep : sigma_) e.verifier->Watch(dep);
    ++stats_.watcher_resets;
  }
  return *e.verifier;
}

std::uint64_t WitnessCache::MemoryBytes() const {
  std::uint64_t total = 0;
  for (const auto& e : entries_) {
    MemoryBreakdown mb = e->ws.MemoryUsage();
    // The pinned heap Database copy mirrors the workspace's tuple store;
    // count it as a second tuple store rather than walking heap Values.
    total += mb.Total() + mb.tuple_store + e->verifier->MemoryBytes();
  }
  return total;
}

void WitnessCache::EnforceByteCeiling(std::uint64_t limit) {
  while (!entries_.empty() && MemoryBytes() > limit) {
    entries_.pop_front();
    ++stats_.evicted;
    ++stats_.byte_evictions;
  }
}

bool WitnessCache::Admit(const Database& db, const Dependency& target,
                         bool* violates_target) {
  // Identical witness already cached? Its sigma check stands; answer the
  // target probe from the existing entry's watchers instead of
  // re-interning (Materialize round-trips make duplicates common), and
  // refresh its recency — being re-offered is a use.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry* e = entries_[i].get();
    if (e->db == db) {
      if (violates_target != nullptr) {
        IncrementalVerifier& v = ProbeVerifier(*e);
        *violates_target = !v.Satisfies(v.Watch(target));
      }
      Touch(i);
      return true;
    }
  }
  auto entry = std::make_unique<Entry>(scheme_);
  entry->ws.AppendDatabase(db);
  bool sigma_ok = true;
  for (const Dependency& dep : sigma_) {
    if (!entry->verifier->Satisfies(entry->verifier->Watch(dep))) {
      sigma_ok = false;
      break;
    }
  }
  if (violates_target != nullptr) {
    *violates_target =
        sigma_ok &&
        !entry->verifier->Satisfies(entry->verifier->Watch(target));
  }
  if (!sigma_ok) {
    ++stats_.rejected;
    return false;
  }
  if (capacity_ == 0) return false;
  if (entries_.size() >= capacity_) {
    entries_.pop_front();
    ++stats_.evicted;
  }
  entry->db = db;  // copied only when actually retained
  entries_.push_back(std::move(entry));
  ++stats_.admitted;
  return true;
}

const Database* WitnessCache::Refute(const Dependency& target) {
  ++stats_.probes;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    IncrementalVerifier& v = ProbeVerifier(*entries_[i]);
    if (!v.Satisfies(v.Watch(target))) {
      ++stats_.hits;
      Touch(i);
      return &entries_.back()->db;
    }
  }
  ++stats_.misses;
  return nullptr;
}

}  // namespace ccfp
