#include "verify/witness_cache.h"

#include <utility>

namespace ccfp {

WitnessCache::WitnessCache(SchemePtr scheme, std::vector<Dependency> sigma,
                           std::size_t capacity)
    : scheme_(std::move(scheme)),
      sigma_(std::move(sigma)),
      capacity_(capacity) {}

void WitnessCache::Touch(std::size_t i) {
  if (i + 1 == entries_.size()) return;
  std::unique_ptr<Entry> e = std::move(entries_[i]);
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
  entries_.push_back(std::move(e));
}

bool WitnessCache::Admit(const Database& db, const Dependency& target,
                         bool* violates_target) {
  // Identical witness already cached? Its sigma check stands; answer the
  // target probe from the existing entry's watchers instead of
  // re-interning (Materialize round-trips make duplicates common), and
  // refresh its recency — being re-offered is a use.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry* e = entries_[i].get();
    if (e->db == db) {
      if (violates_target != nullptr) {
        *violates_target = !e->verifier.Satisfies(e->verifier.Watch(target));
      }
      Touch(i);
      return true;
    }
  }
  auto entry = std::make_unique<Entry>(scheme_);
  entry->ws.AppendDatabase(db);
  bool sigma_ok = true;
  for (const Dependency& dep : sigma_) {
    if (!entry->verifier.Satisfies(entry->verifier.Watch(dep))) {
      sigma_ok = false;
      break;
    }
  }
  if (violates_target != nullptr) {
    *violates_target =
        sigma_ok &&
        !entry->verifier.Satisfies(entry->verifier.Watch(target));
  }
  if (!sigma_ok) {
    ++stats_.rejected;
    return false;
  }
  if (capacity_ == 0) return false;
  if (entries_.size() >= capacity_) {
    entries_.pop_front();
    ++stats_.evicted;
  }
  entry->db = db;  // copied only when actually retained
  entries_.push_back(std::move(entry));
  ++stats_.admitted;
  return true;
}

const Database* WitnessCache::Refute(const Dependency& target) {
  ++stats_.probes;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i]->verifier.Satisfies(entries_[i]->verifier.Watch(target))) {
      ++stats_.hits;
      Touch(i);
      return &entries_.back()->db;
    }
  }
  ++stats_.misses;
  return nullptr;
}

}  // namespace ccfp
