#include "armstrong/builder.h"

#include <algorithm>
#include <unordered_set>

#include "core/satisfies.h"
#include "util/strings.h"

namespace ccfp {

namespace {

// Appends a pair of tuples to `db.relation(fd.rel)` that agree (share a
// null) exactly on fd.lhs and are generic elsewhere — a seed violating `fd`
// unless the chase proves otherwise.
void SeedFdViolation(Database& db, const Fd& fd, std::uint64_t& next_null) {
  std::size_t arity = db.scheme().relation(fd.rel).arity();
  Tuple t1(arity), t2(arity);
  for (AttrId a = 0; a < arity; ++a) {
    bool shared =
        std::find(fd.lhs.begin(), fd.lhs.end(), a) != fd.lhs.end();
    t1[a] = Value::Null(next_null++);
    t2[a] = shared ? t1[a] : Value::Null(next_null++);
  }
  db.Insert(fd.rel, std::move(t1));
  db.Insert(fd.rel, std::move(t2));
}

// Appends one generic tuple to `rel` (a seed against INDs/RDs that must be
// violated, and against "empty relation satisfies everything" artifacts).
void SeedGenericTuple(Database& db, RelId rel, std::uint64_t& next_null) {
  std::size_t arity = db.scheme().relation(rel).arity();
  Tuple t(arity);
  for (AttrId a = 0; a < arity; ++a) t[a] = Value::Null(next_null++);
  db.Insert(rel, std::move(t));
}

}  // namespace

Result<ArmstrongReport> BuildArmstrongDatabase(
    SchemePtr scheme, const std::vector<Fd>& fds,
    const std::vector<Ind>& inds, const std::vector<Dependency>& universe,
    const ImplicationOracle& oracle, const ArmstrongBuildOptions& options) {
  // 1. Expected consequence set.
  std::vector<Dependency> sigma_deps;
  for (const Fd& fd : fds) sigma_deps.push_back(Dependency(fd));
  for (const Ind& ind : inds) sigma_deps.push_back(Dependency(ind));

  std::vector<Dependency> expected;
  std::vector<Dependency> must_fail;
  for (const Dependency& tau : universe) {
    ImplicationVerdict verdict = oracle.Implies(sigma_deps, tau);
    if (verdict == ImplicationVerdict::kUnknown) {
      return Status::FailedPrecondition(
          StrCat("oracle '", oracle.name(), "' cannot decide ",
                 tau.ToString(*scheme)));
    }
    if (verdict == ImplicationVerdict::kImplied) {
      expected.push_back(tau);
    } else {
      must_fail.push_back(tau);
    }
  }

  // 2. Initial seed: two generic tuples per relation + one FD-violating
  // pair per non-consequence FD.
  Database seed(scheme);
  std::uint64_t next_null = 1;
  for (RelId rel = 0; rel < scheme->size(); ++rel) {
    SeedGenericTuple(seed, rel, next_null);
    SeedGenericTuple(seed, rel, next_null);
  }
  for (const Dependency& tau : must_fail) {
    if (tau.is_fd()) SeedFdViolation(seed, tau.fd(), next_null);
  }

  Chase chase(scheme, fds, inds);

  // 3. Chase / verify / repair loop. The chase result stays interned: the
  // engine's interner feeds straight into the Satisfies / ObeysExactly
  // verification, so each round interns the seed's values exactly once and
  // the Database is materialized only for the final report.
  for (int round = 0; round <= options.max_repair_rounds; ++round) {
    CCFP_ASSIGN_OR_RETURN(InternedChaseResult chased,
                          chase.RunInterned(seed, options.chase));
    if (chased.outcome == ChaseOutcome::kFailed) {
      return Status::Internal(
          "chase failed on an all-null Armstrong seed (constant clash)");
    }

    bool repaired = false;
    for (const Dependency& tau : must_fail) {
      if (!chased.db.Satisfies(tau)) continue;
      // Accidentally satisfied non-consequence: add a targeted seed.
      repaired = true;
      if (tau.is_fd()) {
        SeedFdViolation(seed, tau.fd(), next_null);
      } else if (tau.is_ind()) {
        // A fresh generic tuple in the lhs relation will not have its
        // projection in the rhs unless Sigma forces it (it does not — tau
        // is a non-consequence).
        SeedGenericTuple(seed, tau.ind().lhs_rel, next_null);
      } else if (tau.is_rd()) {
        SeedGenericTuple(seed, tau.rd().rel, next_null);
      } else {
        return Status::Unimplemented(
            StrCat("cannot repair dependency kind of ",
                   tau.ToString(*scheme)));
      }
    }

    if (!repaired) {
      // Exactness check (consequences must hold at the fixpoint; the loop
      // above ensured non-consequences fail).
      std::optional<std::string> mismatch =
          ObeysExactly(chased.db, universe, expected);
      if (mismatch.has_value()) {
        return Status::Internal(
            StrCat("Armstrong verification failed: ", *mismatch));
      }
      ArmstrongReport report(chased.db.Materialize());
      report.expected = std::move(expected);
      report.repair_rounds = round;
      return report;
    }
  }
  return Status::Internal(
      StrCat("Armstrong repair did not converge in ",
             options.max_repair_rounds, " rounds"));
}

}  // namespace ccfp
