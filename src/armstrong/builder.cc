#include "armstrong/builder.h"

#include <algorithm>
#include <unordered_set>

#include "core/satisfies.h"
#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

namespace {

// Appends a pair of tuples to `db.relation(fd.rel)` that agree (share a
// null) exactly on fd.lhs and are generic elsewhere — a seed violating `fd`
// unless the chase proves otherwise.
void SeedFdViolation(Database& db, const Fd& fd, std::uint64_t& next_null) {
  std::size_t arity = db.scheme().relation(fd.rel).arity();
  Tuple t1(arity), t2(arity);
  for (AttrId a = 0; a < arity; ++a) {
    bool shared =
        std::find(fd.lhs.begin(), fd.lhs.end(), a) != fd.lhs.end();
    t1[a] = Value::Null(next_null++);
    t2[a] = shared ? t1[a] : Value::Null(next_null++);
  }
  db.Insert(fd.rel, std::move(t1));
  db.Insert(fd.rel, std::move(t2));
}

// Appends one generic tuple to `rel` (a seed against INDs/RDs that must be
// violated, and against "empty relation satisfies everything" artifacts).
void SeedGenericTuple(Database& db, RelId rel, std::uint64_t& next_null) {
  std::size_t arity = db.scheme().relation(rel).arity();
  Tuple t(arity);
  for (AttrId a = 0; a < arity; ++a) t[a] = Value::Null(next_null++);
  db.Insert(rel, std::move(t));
}

// Workspace counterparts: the same seeds, born directly in id-space (fresh
// nulls are new ValueIds; nothing is interned from heap Values).
void SeedFdViolationWs(InternedWorkspace& ws, const Fd& fd) {
  std::size_t arity = ws.scheme().relation(fd.rel).arity();
  IdTuple t1(arity, 0), t2(arity, 0);
  for (AttrId a = 0; a < arity; ++a) {
    bool shared =
        std::find(fd.lhs.begin(), fd.lhs.end(), a) != fd.lhs.end();
    t1[a] = ws.InternFreshNull();
    t2[a] = shared ? t1[a] : ws.InternFreshNull();
  }
  ws.Append(fd.rel, std::move(t1));
  ws.Append(fd.rel, std::move(t2));
}

void SeedGenericTupleWs(InternedWorkspace& ws, RelId rel) {
  std::size_t arity = ws.scheme().relation(rel).arity();
  IdTuple t(arity, 0);
  for (AttrId a = 0; a < arity; ++a) t[a] = ws.InternFreshNull();
  ws.Append(rel, std::move(t));
}

/// Appends the repair seed for an accidentally satisfied non-consequence.
/// Returns an error for dependency kinds the repair loop cannot target.
Status AppendRepairSeedWs(InternedWorkspace& ws, const Dependency& tau) {
  if (tau.is_fd()) {
    SeedFdViolationWs(ws, tau.fd());
  } else if (tau.is_ind()) {
    // A fresh generic tuple in the lhs relation will not have its
    // projection in the rhs unless Sigma forces it (it does not — tau is
    // a non-consequence).
    SeedGenericTupleWs(ws, tau.ind().lhs_rel);
  } else if (tau.is_rd()) {
    SeedGenericTupleWs(ws, tau.rd().rel);
  } else {
    return Status::Unimplemented(
        StrCat("cannot repair dependency kind of ",
               tau.ToString(ws.scheme())));
  }
  return Status::OK();
}

/// The PR 2 flow: re-chase the heap seed database from scratch each round
/// (one full re-intern per round). Differential reference for kWorkspace.
Result<ArmstrongReport> BuildLegacy(
    const SchemePtr& scheme, const std::vector<Fd>& fds,
    const std::vector<Ind>& inds, const std::vector<Dependency>& universe,
    std::vector<Dependency> expected,
    const std::vector<Dependency>& must_fail,
    const ArmstrongBuildOptions& options) {
  Database seed(scheme);
  std::uint64_t next_null = 1;
  for (RelId rel = 0; rel < scheme->size(); ++rel) {
    SeedGenericTuple(seed, rel, next_null);
    SeedGenericTuple(seed, rel, next_null);
  }
  for (const Dependency& tau : must_fail) {
    if (tau.is_fd()) SeedFdViolation(seed, tau.fd(), next_null);
  }

  Chase chase(scheme, fds, inds);

  for (int round = 0; round <= options.max_repair_rounds; ++round) {
    CCFP_ASSIGN_OR_RETURN(InternedChaseResult chased,
                          chase.RunInterned(seed, options.chase));
    if (chased.outcome == ChaseOutcome::kFailed) {
      return Status::Internal(
          "chase failed on an all-null Armstrong seed (constant clash)");
    }

    bool repaired = false;
    for (const Dependency& tau : must_fail) {
      if (!chased.db.Satisfies(tau)) continue;
      // Accidentally satisfied non-consequence: add a targeted seed.
      repaired = true;
      if (tau.is_fd()) {
        SeedFdViolation(seed, tau.fd(), next_null);
      } else if (tau.is_ind()) {
        SeedGenericTuple(seed, tau.ind().lhs_rel, next_null);
      } else if (tau.is_rd()) {
        SeedGenericTuple(seed, tau.rd().rel, next_null);
      } else {
        return Status::Unimplemented(
            StrCat("cannot repair dependency kind of ",
                   tau.ToString(*scheme)));
      }
    }

    if (!repaired) {
      // Exactness check (consequences must hold at the fixpoint; the loop
      // above ensured non-consequences fail).
      std::optional<std::string> mismatch =
          ObeysExactly(chased.db, universe, expected);
      if (mismatch.has_value()) {
        return Status::Internal(
            StrCat("Armstrong verification failed: ", *mismatch));
      }
      ArmstrongReport report(chased.db.Materialize());
      report.expected = std::move(expected);
      report.repair_rounds = round;
      return report;
    }
  }
  return Status::Internal(
      StrCat("Armstrong repair did not converge in ",
             options.max_repair_rounds, " rounds"));
}

}  // namespace

ArmstrongSession::ArmstrongSession(SchemePtr scheme, std::vector<Fd> fds,
                                   std::vector<Ind> inds,
                                   const ImplicationOracle* oracle,
                                   const ArmstrongBuildOptions& options)
    : scheme_(std::move(scheme)),
      fds_(std::move(fds)),
      inds_(std::move(inds)),
      oracle_(oracle),
      options_(options),
      ws_(scheme_),
      chaser_(&ws_, fds_, inds_) {
  for (const Fd& fd : fds_) sigma_deps_.push_back(Dependency(fd));
  for (const Ind& ind : inds_) sigma_deps_.push_back(Dependency(ind));
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    SeedGenericTupleWs(ws_, rel);
    SeedGenericTupleWs(ws_, rel);
  }
  // A session exists to be extended round after round — the shape where
  // watchers amortize. One-shot callers resolve kAuto to kFullSweep
  // before constructing one (see BuildArmstrongDatabase).
  if (options_.verify == ArmstrongVerifyEngine::kAuto) {
    options_.verify = ArmstrongVerifyEngine::kIncremental;
  }
  if (options_.verify == ArmstrongVerifyEngine::kIncremental) {
    verifier_ = std::make_unique<IncrementalVerifier>(&ws_);
  }
}

ArmstrongSession::ArmstrongSession(InternedWorkspace ws, std::vector<Fd> fds,
                                   std::vector<Ind> inds,
                                   const ImplicationOracle* oracle,
                                   const ArmstrongBuildOptions& options)
    : scheme_(ws.scheme_ptr()),
      fds_(std::move(fds)),
      inds_(std::move(inds)),
      oracle_(oracle),
      options_(options),
      ws_(std::move(ws)),
      chaser_(&ws_, fds_, inds_) {
  for (const Fd& fd : fds_) sigma_deps_.push_back(Dependency(fd));
  for (const Ind& ind : inds_) sigma_deps_.push_back(Dependency(ind));
  // No seeding: the adopted workspace already carries the seeds (and
  // every chase consequence and repair) of the session that saved it.
  if (options_.verify == ArmstrongVerifyEngine::kAuto) {
    options_.verify = ArmstrongVerifyEngine::kIncremental;
  }
  if (options_.verify == ArmstrongVerifyEngine::kIncremental) {
    verifier_ = std::make_unique<IncrementalVerifier>(&ws_);
  }
}

ArmstrongSession::ArmstrongSession(InternedWorkspace ws,
                                   SessionClassificationRecord record,
                                   std::vector<Fd> fds, std::vector<Ind> inds,
                                   const ImplicationOracle* oracle,
                                   const ArmstrongBuildOptions& options)
    : ArmstrongSession(std::move(ws), std::move(fds), std::move(inds), oracle,
                       options) {
  // Adopt the persisted classification verbatim: zero oracle calls. The
  // workspace already satisfies exactness for this universe (it was
  // checkpointed by a session that verified it), so no chase or repair is
  // needed here either — the next Extend picks up where the saver left
  // off. Fresh watchers start at feed cursor 0; when the adopted feed is
  // compacted past that (the normal case), they rebuild their counters
  // from the alive ranks — the same proven path every strayed consumer
  // takes.
  CCFP_CHECK(record.universe.size() == record.expected.size());
  for (std::size_t i = 0; i < record.universe.size(); ++i) {
    const Dependency& tau = record.universe[i];
    bool implied = record.expected[i];
    known_.insert(tau);
    universe_.push_back(tau);
    universe_expected_.push_back(implied);
    if (verifier_) universe_ids_.push_back(verifier_->Watch(tau));
    if (implied) {
      expected_.push_back(tau);
    } else {
      // No violation seeding: the adopted workspace already carries the
      // seeds and repairs of the session that saved it.
      must_fail_.push_back(tau);
      if (verifier_) must_fail_ids_.push_back(universe_ids_.back());
    }
  }
}

Status ArmstrongSession::Checkpoint() {
  SnapshotChainWriter* chain = options_.checkpoint.chain;
  if (chain == nullptr) return Status::OK();
  SessionClassificationRecord record;
  record.universe = universe_;
  record.expected = universe_expected_;
  // One cursor vector: the feed tip per relation. A warm start's fresh
  // consumers begin at the tip (or rebuild from ranks), so this is the
  // only position worth persisting.
  std::vector<std::uint64_t> tip(scheme_->size());
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    tip[rel] = ws_.EventCount(rel);
  }
  return chain->Save(ws_, {std::move(tip)}, SerializeSessionRecord(record));
}

Status ArmstrongSession::VerifyExactness() {
  // Cached WatchIds: the incremental re-check is pure counter reads.
  std::optional<std::string> mismatch =
      verifier_ ? ObeysExactlyWatchedIds(*verifier_, universe_,
                                         universe_expected_, universe_ids_)
                : ObeysExactly(ws_, universe_, expected_);
  if (mismatch.has_value()) {
    return Status::Internal(
        StrCat("Armstrong verification failed: ", *mismatch));
  }
  return Status::OK();
}

Status ArmstrongSession::ChaseVerifyRepair() {
  for (int round = 0; round <= options_.max_repair_rounds; ++round) {
    CCFP_ASSIGN_OR_RETURN(WorkspaceChaseStats chased,
                          chaser_.Run(options_.chase));
    if (chased.outcome == ChaseOutcome::kFailed) {
      return Status::Internal(
          "chase failed on an all-null Armstrong seed (constant clash)");
    }
    if (round > 0) ++repair_rounds_;

    bool repaired = false;
    for (std::size_t i = 0; i < must_fail_.size(); ++i) {
      // The incremental engine answers from watcher counters updated by
      // this round's chase delta; the sweep engine re-scans.
      bool satisfied = verifier_ ? verifier_->Satisfies(must_fail_ids_[i])
                                 : ws_.Satisfies(must_fail_[i]);
      if (!satisfied) continue;
      repaired = true;
      CCFP_RETURN_NOT_OK(AppendRepairSeedWs(ws_, must_fail_[i]));
    }
    if (!repaired) return VerifyExactness();
  }
  return Status::Internal(
      StrCat("Armstrong repair did not converge in ",
             options_.max_repair_rounds, " rounds"));
}

Status ArmstrongSession::Extend(const std::vector<Dependency>& delta) {
  for (const Dependency& tau : delta) {
    if (known_.count(tau) > 0) continue;  // already classified
    ImplicationVerdict verdict = oracle_->Implies(sigma_deps_, tau);
    if (verdict == ImplicationVerdict::kUnknown) {
      // Nothing recorded for tau yet, so this particular failure is
      // retryable (e.g. with a better-budgeted oracle).
      return Status::FailedPrecondition(
          StrCat("oracle '", oracle_->name(), "' cannot decide ",
                 tau.ToString(*scheme_)));
    }
    known_.insert(tau);
    universe_.push_back(tau);
    bool implied = verdict == ImplicationVerdict::kImplied;
    universe_expected_.push_back(implied);
    if (verifier_) universe_ids_.push_back(verifier_->Watch(tau));
    if (implied) {
      expected_.push_back(tau);
    } else {
      must_fail_.push_back(tau);
      if (verifier_) must_fail_ids_.push_back(universe_ids_.back());
      if (tau.is_fd()) SeedFdViolationWs(ws_, tau.fd());
    }
  }
  CCFP_RETURN_NOT_OK(ChaseVerifyRepair());
  // Background maintenance is cadence-driven, not per-Extend: both
  // decisions read measured state (MemoryUsage) against the configured
  // byte thresholds. With the default thresholds of 0 every Extend still
  // compacts and (when a chain is configured) checkpoints — the tightest
  // bound, and the pre-checkpoint behavior for the feed.
  //
  // Order matters: compact *before* snapshotting, so the TrimFeedTo
  // journal entries ride in the same delta record and a restored
  // workspace's retained feed window matches the live one exactly. Every
  // registered consumer (the chaser, and the verifier when present) sits
  // at the feed tip after a successful round, so compaction trims the
  // whole retained window.
  MemoryBreakdown usage = ws_.MemoryUsage();
  if (usage.feed >= options_.checkpoint.compact_feed_bytes) {
    ws_.CompactFeeds();
  }
  if (options_.checkpoint.chain != nullptr &&
      (!ws_.journal_enabled() ||
       ws_.JournalBytes() >= options_.checkpoint.snapshot_journal_bytes)) {
    // A failed checkpoint (e.g. an injected crash) leaves the session
    // valid and the journal intact; the error is surfaced so the caller
    // can retry Checkpoint() or keep extending and retry later.
    CCFP_RETURN_NOT_OK(Checkpoint());
  }
  return Status::OK();
}

Result<ArmstrongReport> BuildArmstrongDatabase(
    SchemePtr scheme, const std::vector<Fd>& fds,
    const std::vector<Ind>& inds, const std::vector<Dependency>& universe,
    const ImplicationOracle& oracle, const ArmstrongBuildOptions& options) {
  if (options.engine == ArmstrongEngine::kLegacy) {
    // 1. Expected consequence set.
    std::vector<Dependency> sigma_deps;
    for (const Fd& fd : fds) sigma_deps.push_back(Dependency(fd));
    for (const Ind& ind : inds) sigma_deps.push_back(Dependency(ind));

    std::vector<Dependency> expected;
    std::vector<Dependency> must_fail;
    for (const Dependency& tau : universe) {
      ImplicationVerdict verdict = oracle.Implies(sigma_deps, tau);
      if (verdict == ImplicationVerdict::kUnknown) {
        return Status::FailedPrecondition(
            StrCat("oracle '", oracle.name(), "' cannot decide ",
                   tau.ToString(*scheme)));
      }
      if (verdict == ImplicationVerdict::kImplied) {
        expected.push_back(tau);
      } else {
        must_fail.push_back(tau);
      }
    }
    // 2-3. Seed, then chase / verify / repair to exactness.
    return BuildLegacy(scheme, fds, inds, universe, std::move(expected),
                       must_fail, options);
  }

  // The workspace flow is a one-Extend session: one InternedWorkspace
  // carries seed, chase fixpoint, and verification state across every
  // repair round. Rounds after the first append only their repair seeds
  // and resume the chase — no value is re-interned, no partition is ever
  // rebuilt, and the repaired delta is all the chase (and, under
  // kIncremental, the verifier) re-processes. A one-shot build verifies
  // the universe essentially once, so kAuto picks the sweep here —
  // watchers would be compiled for a single read.
  ArmstrongBuildOptions resolved = options;
  if (resolved.verify == ArmstrongVerifyEngine::kAuto) {
    resolved.verify = ArmstrongVerifyEngine::kFullSweep;
  }
  ArmstrongSession session(scheme, fds, inds, &oracle, resolved);
  CCFP_RETURN_NOT_OK(session.Extend(universe));
  ArmstrongReport report(session.Snapshot());
  report.expected = session.expected();
  report.repair_rounds = session.repair_rounds();
  report.workspace_stats = session.workspace_stats();
  return report;
}

}  // namespace ccfp
