#ifndef CCFP_ARMSTRONG_BUILDER_H_
#define CCFP_ARMSTRONG_BUILDER_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "axiom/oracle.h"
#include "chase/chase.h"
#include "chase/workspace_chase.h"
#include "core/database.h"
#include "core/dependency.h"
#include "core/snapshot.h"
#include "core/workspace.h"
#include "util/status.h"
#include "verify/verifier.h"

namespace ccfp {

/// Builder for Armstrong databases of FD+IND sets: a finite database that
/// obeys *exactly* the consequences of Sigma within a given sentence
/// universe (Fagin–Vardi [FV], cited by the paper, proved such databases
/// exist for FDs and INDs). The paper's Figures 6.1 and 7.1–7.5 are
/// hand-built Armstrong databases; this module mechanizes their
/// construction so the Section 6/7 lemmas can be re-verified for any
/// parameter value.
///
/// Construction: seed each relation with generic tuples engineered to
/// violate every non-consequence (pairs agreeing exactly on an FD's lhs,
/// plus isolated generic tuples against stray INDs), chase to a Sigma
/// fixpoint, verify exactness, and add repair seeds for any dependency that
/// is accidentally satisfied; repeat to a bounded number of rounds.

/// Which build -> chase -> verify -> repair machinery to run.
enum class ArmstrongEngine : std::uint8_t {
  /// One InternedWorkspace threaded through every round: seeds are
  /// appended in id-space, a resumable WorkspaceChase continues from the
  /// previous fixpoint (only the repair delta is chased), and verification
  /// runs on the workspace's cached partitions. Nothing is re-interned
  /// after round 0. The default.
  kWorkspace = 0,
  /// The PR 2 flow: each round re-runs Chase::RunInterned on the heap
  /// seed database (re-interning it per round) and verifies the resulting
  /// IdDatabase. Kept as the differential reference. Always verifies by
  /// full sweep (ArmstrongVerifyEngine does not apply).
  kLegacy = 1,
};

/// How the kWorkspace engine establishes truth each round.
enum class ArmstrongVerifyEngine : std::uint8_t {
  /// Pick per entry point: ArmstrongSession resolves to kIncremental
  /// (multi-round sessions amortize the watcher build many times over —
  /// ~6x end-to-end on the recorded session workload), the one-shot
  /// BuildArmstrongDatabase to kFullSweep (a single-round build verifies
  /// once, and one sweep is cheaper than compiling watchers it would
  /// never reuse). The default.
  kAuto = 0,
  /// Incremental dependency watchers (verify/verifier.h) consume the
  /// workspace change feed: each round re-checks only what that round's
  /// chase delta actually touched, and the exactness check is counter
  /// reads instead of a universe sweep.
  kIncremental = 1,
  /// The PR 2–4 behavior: every verification is a full partition-backed
  /// sweep (`Satisfies` / `ObeysExactly`). Kept as the differential
  /// reference for the watchers.
  kFullSweep = 2,
};

/// Background persistence cadence for an ArmstrongSession. Both triggers
/// are *byte thresholds against measured state* (MemoryUsage), not
/// per-Extend rituals: a session extending by tiny deltas does not pay a
/// compaction scan or a snapshot write per call, and a session ingesting
/// a huge delta checkpoints as soon as the in-flight state warrants it.
struct SessionCheckpointOptions {
  /// Compact the change feeds when the retained event window exceeds this
  /// many logical bytes (MemoryUsage().feed). 0 = compact after every
  /// Extend (the pre-checkpoint behavior, and the tightest bound).
  std::uint64_t compact_feed_bytes = 0;
  /// Write a chain record when the retained mutation journal exceeds this
  /// many logical bytes (MemoryUsage().journal). 0 = checkpoint after
  /// every Extend. Ignored when `chain` is null.
  std::uint64_t snapshot_journal_bytes = 0;
  /// Where checkpoints go. Null (default) disables persistence entirely;
  /// the writer must outlive the session.
  SnapshotChainWriter* chain = nullptr;
};

struct ArmstrongBuildOptions {
  ChaseOptions chase;
  /// Maximum repair rounds before giving up.
  int max_repair_rounds = 8;
  ArmstrongEngine engine = ArmstrongEngine::kWorkspace;
  ArmstrongVerifyEngine verify = ArmstrongVerifyEngine::kAuto;
  SessionCheckpointOptions checkpoint;
};

struct ArmstrongReport {
  Database db;
  /// Expected consequence set used for verification (subset of universe).
  std::vector<Dependency> expected;
  int repair_rounds = 0;
  /// Substrate counters at the end of a kWorkspace build (how many
  /// partitions were extended vs rebuilt, tuples appended, ...); zeroed
  /// for kLegacy. Lets callers and tests prove the rounds reused one
  /// workspace instead of re-interning.
  InternedWorkspace::Stats workspace_stats;

  explicit ArmstrongReport(Database database) : db(std::move(database)) {}
};

/// Builds an Armstrong database for (fds, inds) relative to `universe`.
/// `oracle` decides which universe members are consequences of Sigma (use a
/// ChaseOracle for unrestricted implication). Fails with
/// FailedPrecondition if the oracle answers kUnknown on some member, with
/// ResourceExhausted if the chase diverges, and with Internal if repair
/// rounds run out. Both engines produce verified-exact databases; their
/// tuple contents may differ (the workspace engine keeps chase consequences
/// across rounds instead of re-deriving them from scratch).
Result<ArmstrongReport> BuildArmstrongDatabase(
    SchemePtr scheme, const std::vector<Fd>& fds,
    const std::vector<Ind>& inds, const std::vector<Dependency>& universe,
    const ImplicationOracle& oracle,
    const ArmstrongBuildOptions& options = {});

/// A *multi-round* Armstrong construction: one persistent workspace, chase,
/// and verifier maintained while the sentence universe grows — the shape of
/// the paper's k-ary hierarchy experiments (grow the universe one lattice
/// level, or even one sentence, at a time) and of interactive schema-design
/// sessions.
///
/// Each `Extend(delta)` classifies the new members through the oracle,
/// appends targeted violation seeds for the new non-consequences, resumes
/// the chase over just that delta, runs the usual repair loop, and
/// re-verifies exactness over the *entire universe so far* — so after
/// every Extend the session again holds a verified-exact Armstrong
/// database for (Sigma, universe). With
/// `ArmstrongVerifyEngine::kIncremental` the re-verification costs
/// O(delta + new members), not O(universe * database): old members'
/// watchers answer from counters, and only the new members pay an O(n)
/// initialization. `kFullSweep` re-sweeps the whole universe per Extend
/// (the differential reference and the pre-PR 5 cost model).
class ArmstrongSession {
 public:
  /// Seeds two generic tuples per relation (the builder's base seeds).
  /// `oracle` must outlive the session.
  ArmstrongSession(SchemePtr scheme, std::vector<Fd> fds,
                   std::vector<Ind> inds, const ImplicationOracle* oracle,
                   const ArmstrongBuildOptions& options = {});

  /// Warm-start from a restored workspace (core/snapshot.h): the interned
  /// tuples, value table, union-find, and cached partitions are adopted
  /// as-is — nothing is re-interned and no base seeds are added. `ws`
  /// must be over the same scheme the snapshot was taken with and at a
  /// chase fixpoint (the state a session leaves behind after a successful
  /// Extend). Universe classification is not part of the workspace;
  /// re-Extend with the universe to rebuild it — watchers then build
  /// straight from the adopted data.
  ArmstrongSession(InternedWorkspace ws, std::vector<Fd> fds,
                   std::vector<Ind> inds, const ImplicationOracle* oracle,
                   const ArmstrongBuildOptions& options = {});

  /// Warm-start *without replay*: adopts the workspace AND the persisted
  /// universe classification (the `aux` record a checkpointing session
  /// wrote — see Checkpoint and SessionClassificationRecord). The session
  /// is immediately in the state the saver left it in: universe, expected
  /// set, and repair targets are rebuilt with zero oracle calls, and
  /// under kIncremental the watchers initialize straight from the adopted
  /// substrate. `record` must come from the same save as `ws`.
  ArmstrongSession(InternedWorkspace ws, SessionClassificationRecord record,
                   std::vector<Fd> fds, std::vector<Ind> inds,
                   const ImplicationOracle* oracle,
                   const ArmstrongBuildOptions& options = {});

  /// Writes one chain record (base or delta, per the writer's fold
  /// policy) carrying the workspace, the verifier-equivalent feed
  /// cursors, and the universe classification. No-op without a configured
  /// `options.checkpoint.chain`. Extend calls this automatically when the
  /// journal threshold trips; callers may also invoke it directly (e.g.
  /// right before shutdown). On failure — including an injected crash —
  /// the session stays valid and the journal is retained, so a retry
  /// writes a superset record at the same chain position.
  Status Checkpoint();

  /// Grows the universe by `delta` (members already known are skipped),
  /// re-establishes exactness, and reports the same failure modes as
  /// BuildArmstrongDatabase. On an error the session may be left
  /// partially extended; discard it rather than Extend further.
  Status Extend(const std::vector<Dependency>& delta);

  const DatabaseScheme& scheme() const { return *scheme_; }
  const std::vector<Dependency>& universe() const { return universe_; }
  const std::vector<Dependency>& expected() const { return expected_; }
  /// Total repair rounds across every Extend so far.
  int repair_rounds() const { return repair_rounds_; }
  const InternedWorkspace::Stats& workspace_stats() const {
    return ws_.stats();
  }
  const InternedWorkspace& workspace() const { return ws_; }

  /// The current Armstrong database (alive tuples, slot order preserved).
  Database Snapshot() const { return ws_.Materialize(); }

 private:
  /// The build loop body: chase to fixpoint, re-check every current
  /// non-consequence, seed repairs, repeat; then re-verify exactness.
  Status ChaseVerifyRepair();
  /// Exactness over the whole universe, dispatched on options_.verify.
  Status VerifyExactness();

  SchemePtr scheme_;
  std::vector<Fd> fds_;
  std::vector<Ind> inds_;
  const ImplicationOracle* oracle_;
  ArmstrongBuildOptions options_;

  InternedWorkspace ws_;
  WorkspaceChase chaser_;
  /// Present iff options_.verify == kIncremental.
  std::unique_ptr<IncrementalVerifier> verifier_;

  std::vector<Dependency> sigma_deps_;  ///< fds_ + inds_ for the oracle
  std::vector<Dependency> universe_;
  std::vector<Dependency> expected_;
  std::vector<Dependency> must_fail_;
  /// Watch handles parallel to universe_ / must_fail_ (kIncremental only)
  /// — cached so re-verification rounds are pure counter reads, not
  /// dependency-hash lookups.
  std::vector<WatchId> universe_ids_;
  std::vector<bool> universe_expected_;  ///< parallel to universe_
  std::vector<WatchId> must_fail_ids_;
  std::unordered_set<Dependency, DependencyHash> known_;
  int repair_rounds_ = 0;
};

}  // namespace ccfp

#endif  // CCFP_ARMSTRONG_BUILDER_H_
