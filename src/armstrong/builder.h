#ifndef CCFP_ARMSTRONG_BUILDER_H_
#define CCFP_ARMSTRONG_BUILDER_H_

#include <cstdint>
#include <vector>

#include "axiom/oracle.h"
#include "chase/chase.h"
#include "core/database.h"
#include "core/dependency.h"
#include "core/workspace.h"
#include "util/status.h"

namespace ccfp {

/// Builder for Armstrong databases of FD+IND sets: a finite database that
/// obeys *exactly* the consequences of Sigma within a given sentence
/// universe (Fagin–Vardi [FV], cited by the paper, proved such databases
/// exist for FDs and INDs). The paper's Figures 6.1 and 7.1–7.5 are
/// hand-built Armstrong databases; this module mechanizes their
/// construction so the Section 6/7 lemmas can be re-verified for any
/// parameter value.
///
/// Construction: seed each relation with generic tuples engineered to
/// violate every non-consequence (pairs agreeing exactly on an FD's lhs,
/// plus isolated generic tuples against stray INDs), chase to a Sigma
/// fixpoint, verify exactness, and add repair seeds for any dependency that
/// is accidentally satisfied; repeat to a bounded number of rounds.

/// Which build -> chase -> verify -> repair machinery to run.
enum class ArmstrongEngine : std::uint8_t {
  /// One InternedWorkspace threaded through every round: seeds are
  /// appended in id-space, a resumable WorkspaceChase continues from the
  /// previous fixpoint (only the repair delta is chased), and verification
  /// runs on the workspace's cached partitions. Nothing is re-interned
  /// after round 0. The default.
  kWorkspace = 0,
  /// The PR 2 flow: each round re-runs Chase::RunInterned on the heap
  /// seed database (re-interning it per round) and verifies the resulting
  /// IdDatabase. Kept as the differential reference.
  kLegacy = 1,
};

struct ArmstrongBuildOptions {
  ChaseOptions chase;
  /// Maximum repair rounds before giving up.
  int max_repair_rounds = 8;
  ArmstrongEngine engine = ArmstrongEngine::kWorkspace;
};

struct ArmstrongReport {
  Database db;
  /// Expected consequence set used for verification (subset of universe).
  std::vector<Dependency> expected;
  int repair_rounds = 0;
  /// Substrate counters at the end of a kWorkspace build (how many
  /// partitions were extended vs rebuilt, tuples appended, ...); zeroed
  /// for kLegacy. Lets callers and tests prove the rounds reused one
  /// workspace instead of re-interning.
  InternedWorkspace::Stats workspace_stats;

  explicit ArmstrongReport(Database database) : db(std::move(database)) {}
};

/// Builds an Armstrong database for (fds, inds) relative to `universe`.
/// `oracle` decides which universe members are consequences of Sigma (use a
/// ChaseOracle for unrestricted implication). Fails with
/// FailedPrecondition if the oracle answers kUnknown on some member, with
/// ResourceExhausted if the chase diverges, and with Internal if repair
/// rounds run out. Both engines produce verified-exact databases; their
/// tuple contents may differ (the workspace engine keeps chase consequences
/// across rounds instead of re-deriving them from scratch).
Result<ArmstrongReport> BuildArmstrongDatabase(
    SchemePtr scheme, const std::vector<Fd>& fds,
    const std::vector<Ind>& inds, const std::vector<Dependency>& universe,
    const ImplicationOracle& oracle,
    const ArmstrongBuildOptions& options = {});

}  // namespace ccfp

#endif  // CCFP_ARMSTRONG_BUILDER_H_
