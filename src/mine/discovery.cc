#include "mine/discovery.h"

#include <algorithm>
#include <functional>

namespace ccfp {

namespace {

void ForEachSortedSubset(
    std::size_t arity, std::size_t max_size, bool include_empty,
    const std::function<void(const std::vector<AttrId>&)>& fn) {
  std::vector<AttrId> current;
  std::function<void(AttrId)> rec = [&](AttrId start) {
    if (include_empty || !current.empty()) fn(current);
    if (current.size() >= max_size) return;
    for (AttrId a = start; a < arity; ++a) {
      current.push_back(a);
      rec(a + 1);
      current.pop_back();
    }
  };
  rec(0);
}

void ForEachSequence(
    std::size_t arity, std::size_t width,
    const std::function<void(const std::vector<AttrId>&)>& fn) {
  std::vector<AttrId> current;
  std::vector<bool> used(arity, false);
  std::function<void()> rec = [&]() {
    if (current.size() == width) {
      fn(current);
      return;
    }
    for (AttrId a = 0; a < arity; ++a) {
      if (used[a]) continue;
      used[a] = true;
      current.push_back(a);
      rec();
      current.pop_back();
      used[a] = false;
    }
  };
  rec();
}

bool LhsSubsumes(const std::vector<AttrId>& small,
                 const std::vector<AttrId>& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

/// Candidate enumeration shared by the sweep and watcher engines; the
/// engines differ only in how a candidate's satisfaction is decided.
template <typename SatisfiesFn>
std::vector<Fd> MineFdsWith(std::size_t arity, RelId rel,
                            const FdMiningOptions& options,
                            SatisfiesFn&& satisfies) {
  std::vector<Fd> mined;
  ForEachSortedSubset(
      arity, options.max_lhs, options.include_constants,
      [&](const std::vector<AttrId>& lhs) {
        for (AttrId rhs = 0; rhs < arity; ++rhs) {
          if (std::find(lhs.begin(), lhs.end(), rhs) != lhs.end()) {
            continue;  // trivial
          }
          Fd candidate{rel, lhs, {rhs}};
          if (!satisfies(candidate)) continue;
          mined.push_back(std::move(candidate));
        }
      });
  if (!options.minimal_only) return mined;

  // Keep an FD only if no other mined FD with the same rhs has a strictly
  // smaller lhs (both lhs are sorted).
  std::vector<Fd> minimal;
  for (const Fd& fd : mined) {
    bool subsumed = false;
    for (const Fd& other : mined) {
      if (other.rhs != fd.rhs || other.lhs == fd.lhs) continue;
      if (other.lhs.size() < fd.lhs.size() &&
          LhsSubsumes(other.lhs, fd.lhs)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) minimal.push_back(fd);
  }
  return minimal;
}

template <typename SatisfiesFn, typename AliveFn>
std::vector<Ind> MineIndsWith(const DatabaseScheme& scheme,
                              const IndMiningOptions& options,
                              SatisfiesFn&& satisfies, AliveFn&& alive) {
  std::vector<Ind> mined;
  for (std::size_t width = 1; width <= options.max_width; ++width) {
    for (RelId r1 = 0; r1 < scheme.size(); ++r1) {
      if (scheme.relation(r1).arity() < width) continue;
      if (options.skip_vacuous && alive(r1) == 0) continue;
      for (RelId r2 = 0; r2 < scheme.size(); ++r2) {
        if (scheme.relation(r2).arity() < width) continue;
        ForEachSequence(
            scheme.relation(r1).arity(), width,
            [&](const std::vector<AttrId>& lhs) {
              ForEachSequence(
                  scheme.relation(r2).arity(), width,
                  [&](const std::vector<AttrId>& rhs) {
                    Ind candidate{r1, lhs, r2, rhs};
                    if (IsTrivial(candidate)) return;
                    if (satisfies(candidate)) {
                      mined.push_back(candidate);
                    }
                  });
            });
      }
    }
  }
  return mined;
}

template <typename SatisfiesFn, typename AliveFn>
std::vector<Rd> MineRdsWith(const DatabaseScheme& scheme,
                            SatisfiesFn&& satisfies, AliveFn&& alive) {
  std::vector<Rd> mined;
  for (RelId rel = 0; rel < scheme.size(); ++rel) {
    if (alive(rel) == 0) continue;  // vacuous RDs are noise
    std::size_t arity = scheme.relation(rel).arity();
    for (AttrId a = 0; a < arity; ++a) {
      for (AttrId b = a + 1; b < arity; ++b) {
        Rd candidate{rel, {a}, {b}};
        if (satisfies(candidate)) mined.push_back(candidate);
      }
    }
  }
  return mined;
}

}  // namespace

std::vector<Fd> MineFds(const InternedWorkspace& ws, RelId rel,
                        const FdMiningOptions& options) {
  // Candidates sharing a column set hit the same cached projection
  // partition of the workspace instead of re-hashing the relation.
  return MineFdsWith(ws.scheme().relation(rel).arity(), rel, options,
                     [&](const Fd& fd) { return ws.Satisfies(fd); });
}

std::vector<Fd> MineFds(IncrementalVerifier& verifier, RelId rel,
                        const FdMiningOptions& options) {
  // Each candidate becomes (or re-finds) a watcher: one CatchUp absorbs
  // the workspace delta, then every verdict is a counter read. Candidates
  // across lattice levels share the sorted column-set partitions.
  return MineFdsWith(
      verifier.workspace().scheme().relation(rel).arity(), rel, options,
      [&](const Fd& fd) {
        return verifier.Satisfies(verifier.Watch(Dependency(fd)));
      });
}

std::vector<Fd> MineFds(const Database& db, RelId rel,
                        const FdMiningOptions& options) {
  InternedWorkspace ws(db.scheme_ptr());
  ws.AppendRelation(db, rel);
  return MineFds(ws, rel, options);
}

std::vector<Ind> MineInds(const InternedWorkspace& ws,
                          const IndMiningOptions& options) {
  return MineIndsWith(
      ws.scheme(), options,
      [&](const Ind& ind) { return ws.Satisfies(ind); },
      [&](RelId rel) { return ws.AliveTuples(rel); });
}

std::vector<Ind> MineInds(IncrementalVerifier& verifier,
                          const IndMiningOptions& options) {
  const InternedWorkspace& ws = verifier.workspace();
  return MineIndsWith(
      ws.scheme(), options,
      [&](const Ind& ind) {
        return verifier.Satisfies(verifier.Watch(Dependency(ind)));
      },
      [&](RelId rel) { return ws.AliveTuples(rel); });
}

std::vector<Ind> MineInds(const Database& db,
                          const IndMiningOptions& options) {
  InternedWorkspace ws(db.scheme_ptr());
  ws.AppendDatabase(db);
  return MineInds(ws, options);
}

std::vector<Rd> MineRds(const InternedWorkspace& ws) {
  return MineRdsWith(
      ws.scheme(), [&](const Rd& rd) { return ws.Satisfies(rd); },
      [&](RelId rel) { return ws.AliveTuples(rel); });
}

std::vector<Rd> MineRds(IncrementalVerifier& verifier) {
  const InternedWorkspace& ws = verifier.workspace();
  return MineRdsWith(
      ws.scheme(),
      [&](const Rd& rd) {
        return verifier.Satisfies(verifier.Watch(Dependency(rd)));
      },
      [&](RelId rel) { return ws.AliveTuples(rel); });
}

std::vector<Rd> MineRds(const Database& db) {
  InternedWorkspace ws(db.scheme_ptr());
  ws.AppendDatabase(db);
  return MineRds(ws);
}

}  // namespace ccfp
