#ifndef CCFP_MINE_DISCOVERY_H_
#define CCFP_MINE_DISCOVERY_H_

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "core/dependency.h"
#include "core/workspace.h"
#include "verify/verifier.h"

namespace ccfp {

/// Dependency discovery ("profiling"): enumerate the FDs / INDs / RDs that
/// a concrete database satisfies. This is the inverse direction of the
/// paper's implication problem and the bridge to modern profiling tools
/// (TANE-style FD discovery, SPIDER-style IND discovery) — implemented
/// here by direct model checking against a bounded candidate universe,
/// which is exact and adequate for design-time schemas.
///
/// Every miner has three entry points: a `Database` convenience overload
/// that interns into a throwaway workspace; an `InternedWorkspace`
/// overload for callers probing the same data repeatedly — mining FDs,
/// then INDs, then RDs (or re-mining after appends) over one caller-owned
/// workspace shares every cached projection partition across the calls;
/// and an `IncrementalVerifier` overload that registers every candidate
/// as a watcher (verify/verifier.h). The verifier overloads share watcher
/// state across candidate lattice levels — the FD sweep's sorted
/// column-set partitions are reused between lhs sizes and between
/// candidates — and, because watchers persist inside the caller's
/// verifier, *re-mining after the workspace changed costs only the
/// delta*: the sweeps below re-scan per call, the watcher overloads just
/// catch up on the change feed and re-read counters.

struct FdMiningOptions {
  /// Maximum size of a candidate left-hand side.
  std::size_t max_lhs = 2;
  /// Drop non-minimal results (an FD whose lhs strictly contains the lhs
  /// of another mined FD with the same rhs).
  bool minimal_only = true;
  /// Include empty-lhs ("constant column") FDs.
  bool include_constants = false;
};

/// All FDs with singleton rhs over `rel` satisfied by `db`, with sorted
/// lhs, excluding trivial ones.
std::vector<Fd> MineFds(const Database& db, RelId rel,
                        const FdMiningOptions& options = {});
std::vector<Fd> MineFds(const InternedWorkspace& ws, RelId rel,
                        const FdMiningOptions& options = {});
std::vector<Fd> MineFds(IncrementalVerifier& verifier, RelId rel,
                        const FdMiningOptions& options = {});

struct IndMiningOptions {
  /// Maximum IND width to consider (beware: candidates grow like the
  /// permutation counts of Section 3).
  std::size_t max_width = 1;
  /// Skip candidates whose left-hand relation is empty (they hold
  /// vacuously and flood the output).
  bool skip_vacuous = true;
};

/// All nontrivial INDs of width <= max_width satisfied by `db`.
std::vector<Ind> MineInds(const Database& db,
                          const IndMiningOptions& options = {});
std::vector<Ind> MineInds(const InternedWorkspace& ws,
                          const IndMiningOptions& options = {});
std::vector<Ind> MineInds(IncrementalVerifier& verifier,
                          const IndMiningOptions& options = {});

/// All nontrivial unary RDs satisfied by `db` (empty relations are skipped:
/// their RDs hold vacuously).
std::vector<Rd> MineRds(const Database& db);
std::vector<Rd> MineRds(const InternedWorkspace& ws);
std::vector<Rd> MineRds(IncrementalVerifier& verifier);

}  // namespace ccfp

#endif  // CCFP_MINE_DISCOVERY_H_
