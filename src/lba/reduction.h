#ifndef CCFP_LBA_REDUCTION_H_
#define CCFP_LBA_REDUCTION_H_

#include <cstdint>
#include <vector>

#include "core/dependency.h"
#include "core/schema.h"
#include "lba/lba.h"
#include "util/status.h"

namespace ccfp {

/// The Theorem 3.3 reduction from LINEAR BOUNDED AUTOMATON ACCEPTANCE to
/// the decision problem for INDs: given M and input x with |x| = n, build a
/// single relation scheme R over attributes (K u Gamma) x {1, ..., n+1}
/// (attribute "(r, j)" encodes 'the j-th symbol of a configuration is r'),
/// a set Sigma of INDs encoding the legal window rewrites of M, and a
/// single IND
///   sigma: R[(s,1),(x_1,2),...,(x_n,n+1)] <= R[(h,1),(B,2),...,(B,n+1)],
/// such that Sigma |= sigma iff M accepts x in space n.
struct LbaToIndReduction {
  std::size_t n = 0;
  SchemePtr scheme;
  std::vector<Ind> sigma;
  Ind target;

  /// Attribute (symbol, position) for position 1..n+1 (1-based, as in the
  /// paper).
  AttrId AttrOf(const LbaSymbol& symbol, std::size_t position) const;

  /// The Corollary 3.2 expression corresponding to a configuration
  /// Y = y_1...y_{n+1}: the attribute sequence ((y_1,1),...,(y_{n+1},n+1)).
  std::vector<AttrId> ConfigurationExpression(
      const std::vector<LbaSymbol>& config) const;

  std::size_t num_states = 0;
  std::size_t num_tape_symbols = 0;
};

/// Builds the reduction. Requires n >= 2 (with n < 2 there is no window, so
/// machines with such inputs never move — callers should special-case).
Result<LbaToIndReduction> BuildLbaToIndReduction(
    const LbaMachine& machine, const std::vector<std::uint32_t>& input);

}  // namespace ccfp

#endif  // CCFP_LBA_REDUCTION_H_
