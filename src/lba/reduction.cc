#include "lba/reduction.h"

#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

AttrId LbaToIndReduction::AttrOf(const LbaSymbol& symbol,
                                 std::size_t position) const {
  CCFP_CHECK(position >= 1 && position <= n + 1);
  std::size_t per_position = num_states + num_tape_symbols;
  std::size_t symbol_index =
      symbol.is_state ? symbol.id : num_states + symbol.id;
  return static_cast<AttrId>((position - 1) * per_position + symbol_index);
}

std::vector<AttrId> LbaToIndReduction::ConfigurationExpression(
    const std::vector<LbaSymbol>& config) const {
  CCFP_CHECK(config.size() == n + 1);
  std::vector<AttrId> attrs;
  attrs.reserve(n + 1);
  for (std::size_t j = 0; j < config.size(); ++j) {
    attrs.push_back(AttrOf(config[j], j + 1));
  }
  return attrs;
}

Result<LbaToIndReduction> BuildLbaToIndReduction(
    const LbaMachine& machine, const std::vector<std::uint32_t>& input) {
  const std::size_t n = input.size();
  if (n < 2) {
    return Status::InvalidArgument(
        "the reduction needs |x| >= 2 (no rewrite window fits otherwise)");
  }

  LbaToIndReduction red;
  red.n = n;
  red.num_states = machine.num_states();
  red.num_tape_symbols = machine.num_tape_symbols();

  // Attribute names "q:<state>@j" and "t:<symbol>@j", position-major so the
  // AttrOf arithmetic matches the declaration order.
  std::vector<std::string> attrs;
  attrs.reserve((n + 1) * (red.num_states + red.num_tape_symbols));
  for (std::size_t j = 1; j <= n + 1; ++j) {
    for (std::size_t q = 0; q < red.num_states; ++q) {
      attrs.push_back(StrCat("q:", machine.state_name(q), "@", j));
    }
    for (std::size_t g = 0; g < red.num_tape_symbols; ++g) {
      attrs.push_back(StrCat("t:", machine.tape_name(g), "@", j));
    }
  }
  red.scheme = MakeScheme({{"R", attrs}});

  // sigma: initial configuration <= final configuration.
  red.target.lhs_rel = 0;
  red.target.rhs_rel = 0;
  red.target.lhs =
      red.ConfigurationExpression(machine.InitialConfiguration(input));
  red.target.rhs =
      red.ConfigurationExpression(machine.FinalConfiguration(n));

  // Sigma: for each window rewrite m and window start j in {1..n-1}, the
  // IND S(m, j) = R[P_j, (a,j), (b,j+1), (c,j+2)]
  //            <= R[P_j, (a',j), (b',j+1), (c',j+2)]
  // where P_j lists (tape symbol, position) for every position outside the
  // window — the frame that copies the untouched tape cells.
  for (const LbaRewrite& rw : machine.rewrites()) {
    for (std::size_t j = 1; j + 2 <= n + 1; ++j) {
      Ind ind;
      ind.lhs_rel = 0;
      ind.rhs_rel = 0;
      for (std::size_t pos = 1; pos <= n + 1; ++pos) {
        if (pos >= j && pos <= j + 2) continue;
        for (std::uint32_t g = 0; g < red.num_tape_symbols; ++g) {
          AttrId attr = red.AttrOf(LbaSymbol{false, g}, pos);
          ind.lhs.push_back(attr);
          ind.rhs.push_back(attr);
        }
      }
      for (std::size_t w = 0; w < 3; ++w) {
        ind.lhs.push_back(red.AttrOf(rw.from[w], j + w));
        ind.rhs.push_back(red.AttrOf(rw.to[w], j + w));
      }
      Status st = Validate(*red.scheme, ind);
      CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
      red.sigma.push_back(std::move(ind));
    }
  }
  return red;
}

}  // namespace ccfp
