#ifndef CCFP_LBA_LBA_H_
#define CCFP_LBA_LBA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ccfp {

/// A symbol of a configuration string: either a state of K or a tape symbol
/// of Gamma (Theorem 3.3 encodes configurations as strings in Gamma* K
/// Gamma* of length n+1, the state placed immediately to the left of the
/// scanned cell).
struct LbaSymbol {
  bool is_state = false;
  std::uint32_t id = 0;

  friend bool operator==(const LbaSymbol&, const LbaSymbol&) = default;
  friend auto operator<=>(const LbaSymbol&, const LbaSymbol&) = default;
};

/// A window rewriting rule abc -> a'b'c' applied to configurations — the
/// form in which the paper encodes the moves of the machine.
struct LbaRewrite {
  LbaSymbol from[3];
  LbaSymbol to[3];
};

enum class HeadMove : std::uint8_t { kLeft, kRight, kStay };

/// A nondeterministic linear-bounded automaton (one-tape NTM confined to
/// its input cells). Build with AddState/AddTapeSymbol/AddTransition; the
/// transitions compile to window rewriting rules per the conventions of the
/// Theorem 3.3 proof:
///   * right move (q, s -> s', R):  (q, s, x)  -> (s', q', x)  for all x;
///   * left  move (q, s -> s', L):  (y, q, s)  -> (q', y, s')  for all y;
///   * stay       (q, s -> s', S):  (q, s, x)  -> (q', s', x)  and
///                                  (y, q, s)  -> (y, q', s')  (for the
///                                  last-cell case).
/// The machine accepts input x (|x| = n) iff the final configuration
/// h B^n is reachable from s x.
class LbaMachine {
 public:
  LbaMachine();

  /// Returns the id of the new state / tape symbol.
  std::uint32_t AddState(std::string name);
  std::uint32_t AddTapeSymbol(std::string name);

  void SetStartState(std::uint32_t state) { start_state_ = state; }
  void SetHaltState(std::uint32_t state) { halt_state_ = state; }
  /// The blank is tape symbol 0, added by the constructor with name "B".
  std::uint32_t blank() const { return 0; }

  std::uint32_t start_state() const { return start_state_; }
  std::uint32_t halt_state() const { return halt_state_; }
  std::size_t num_states() const { return state_names_.size(); }
  std::size_t num_tape_symbols() const { return tape_names_.size(); }
  const std::string& state_name(std::uint32_t id) const {
    return state_names_[id];
  }
  const std::string& tape_name(std::uint32_t id) const {
    return tape_names_[id];
  }

  /// Adds the nondeterministic transition (state, read) -> (next_state,
  /// write, move), compiling it to window rewriting rules.
  void AddTransition(std::uint32_t state, std::uint32_t read,
                     std::uint32_t next_state, std::uint32_t write,
                     HeadMove move);

  /// Adds a raw window rewriting rule (for tests of the raw semantics).
  void AddRewrite(const LbaRewrite& rewrite) { rewrites_.push_back(rewrite); }

  const std::vector<LbaRewrite>& rewrites() const { return rewrites_; }

  /// The initial configuration s x (length |x| + 1).
  std::vector<LbaSymbol> InitialConfiguration(
      const std::vector<std::uint32_t>& input) const;

  /// The accepting configuration h B^n.
  std::vector<LbaSymbol> FinalConfiguration(std::size_t n) const;

  /// Renders a configuration, e.g. "s a a B".
  std::string ConfigurationToString(
      const std::vector<LbaSymbol>& config) const;

 private:
  std::vector<std::string> state_names_;
  std::vector<std::string> tape_names_;
  std::uint32_t start_state_ = 0;
  std::uint32_t halt_state_ = 0;
  std::vector<LbaRewrite> rewrites_;
};

struct LbaRunOptions {
  std::uint64_t max_configurations = 1u << 22;
};

struct LbaRunResult {
  bool accepts = false;
  std::uint64_t configurations_explored = 0;
  /// An accepting configuration sequence (Y_1, ..., Y_w), present iff
  /// accepts (this is the certificate Corollary 3.2 turns into an
  /// expression sequence).
  std::vector<std::vector<LbaSymbol>> accepting_run;
};

/// Decides acceptance by BFS over the configuration graph. Exponential in
/// the worst case (that is the point of Theorem 3.3); budgeted.
Result<LbaRunResult> LbaAccepts(const LbaMachine& machine,
                                const std::vector<std::uint32_t>& input,
                                const LbaRunOptions& options = {});

}  // namespace ccfp

#endif  // CCFP_LBA_LBA_H_
