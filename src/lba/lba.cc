#include "lba/lba.h"

#include <deque>
#include <unordered_map>

#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

LbaMachine::LbaMachine() { AddTapeSymbol("B"); }

std::uint32_t LbaMachine::AddState(std::string name) {
  state_names_.push_back(std::move(name));
  return static_cast<std::uint32_t>(state_names_.size() - 1);
}

std::uint32_t LbaMachine::AddTapeSymbol(std::string name) {
  tape_names_.push_back(std::move(name));
  return static_cast<std::uint32_t>(tape_names_.size() - 1);
}

void LbaMachine::AddTransition(std::uint32_t state, std::uint32_t read,
                               std::uint32_t next_state, std::uint32_t write,
                               HeadMove move) {
  CCFP_CHECK(state < num_states() && next_state < num_states());
  CCFP_CHECK(read < num_tape_symbols() && write < num_tape_symbols());
  const LbaSymbol q{true, state};
  const LbaSymbol qp{true, next_state};
  const LbaSymbol s{false, read};
  const LbaSymbol sp{false, write};
  switch (move) {
    case HeadMove::kRight:
      for (std::uint32_t x = 0; x < num_tape_symbols(); ++x) {
        LbaSymbol xs{false, x};
        rewrites_.push_back(LbaRewrite{{q, s, xs}, {sp, qp, xs}});
      }
      break;
    case HeadMove::kLeft:
      for (std::uint32_t y = 0; y < num_tape_symbols(); ++y) {
        LbaSymbol ys{false, y};
        rewrites_.push_back(LbaRewrite{{ys, q, s}, {qp, ys, sp}});
      }
      break;
    case HeadMove::kStay:
      for (std::uint32_t x = 0; x < num_tape_symbols(); ++x) {
        LbaSymbol xs{false, x};
        rewrites_.push_back(LbaRewrite{{q, s, xs}, {qp, sp, xs}});
      }
      for (std::uint32_t y = 0; y < num_tape_symbols(); ++y) {
        LbaSymbol ys{false, y};
        rewrites_.push_back(LbaRewrite{{ys, q, s}, {ys, qp, sp}});
      }
      break;
  }
}

std::vector<LbaSymbol> LbaMachine::InitialConfiguration(
    const std::vector<std::uint32_t>& input) const {
  std::vector<LbaSymbol> config;
  config.reserve(input.size() + 1);
  config.push_back(LbaSymbol{true, start_state_});
  for (std::uint32_t sym : input) {
    CCFP_CHECK(sym < num_tape_symbols());
    config.push_back(LbaSymbol{false, sym});
  }
  return config;
}

std::vector<LbaSymbol> LbaMachine::FinalConfiguration(std::size_t n) const {
  std::vector<LbaSymbol> config;
  config.reserve(n + 1);
  config.push_back(LbaSymbol{true, halt_state_});
  for (std::size_t i = 0; i < n; ++i) {
    config.push_back(LbaSymbol{false, blank()});
  }
  return config;
}

std::string LbaMachine::ConfigurationToString(
    const std::vector<LbaSymbol>& config) const {
  return JoinMapped(config, " ", [&](const LbaSymbol& sym) {
    return sym.is_state ? state_names_[sym.id] : tape_names_[sym.id];
  });
}

namespace {

struct ConfigHash {
  std::size_t operator()(const std::vector<LbaSymbol>& config) const {
    std::size_t h = 0xCBF29CE484222325ULL;
    for (const LbaSymbol& sym : config) {
      h ^= (static_cast<std::size_t>(sym.is_state) << 32) | sym.id;
      h *= 0x100000001B3ULL;
    }
    return h;
  }
};

}  // namespace

Result<LbaRunResult> LbaAccepts(const LbaMachine& machine,
                                const std::vector<std::uint32_t>& input,
                                const LbaRunOptions& options) {
  LbaRunResult result;
  const std::size_t n = input.size();
  std::vector<LbaSymbol> start = machine.InitialConfiguration(input);
  std::vector<LbaSymbol> goal = machine.FinalConfiguration(n);

  std::unordered_map<std::vector<LbaSymbol>, std::vector<LbaSymbol>,
                     ConfigHash>
      parent;  // config -> predecessor (start maps to itself)
  parent.emplace(start, start);
  std::deque<std::vector<LbaSymbol>> frontier{start};
  bool found = (start == goal);

  while (!found && !frontier.empty()) {
    std::vector<LbaSymbol> config = std::move(frontier.front());
    frontier.pop_front();
    if (++result.configurations_explored > options.max_configurations) {
      return Status::ResourceExhausted(
          StrCat("LBA configuration budget of ", options.max_configurations,
                 " exhausted"));
    }
    // Apply every rewrite at every window position j (0-based; the window
    // covers positions j, j+1, j+2 of the (n+1)-symbol configuration).
    for (std::size_t j = 0; j + 2 < config.size(); ++j) {
      for (const LbaRewrite& rw : machine.rewrites()) {
        if (config[j] == rw.from[0] && config[j + 1] == rw.from[1] &&
            config[j + 2] == rw.from[2]) {
          std::vector<LbaSymbol> next = config;
          next[j] = rw.to[0];
          next[j + 1] = rw.to[1];
          next[j + 2] = rw.to[2];
          if (parent.count(next) > 0) continue;
          parent.emplace(next, config);
          if (next == goal) {
            found = true;
            break;
          }
          frontier.push_back(std::move(next));
        }
      }
      if (found) break;
    }
  }

  result.accepts = found;
  if (found) {
    std::vector<std::vector<LbaSymbol>> run;
    std::vector<LbaSymbol> cursor = goal;
    while (true) {
      run.push_back(cursor);
      const std::vector<LbaSymbol>& prev = parent.at(cursor);
      if (prev == cursor) break;
      cursor = prev;
    }
    result.accepting_run.assign(run.rbegin(), run.rend());
  }
  return result;
}

}  // namespace ccfp
