#include "interact/unary_finite.h"

#include <algorithm>
#include <deque>

#include "fd/closure.h"
#include "ind/special.h"
#include "util/check.h"

namespace ccfp {

UnaryFiniteImplication::UnaryFiniteImplication(SchemePtr scheme,
                                               const std::vector<Fd>& fds,
                                               const std::vector<Ind>& inds)
    : scheme_(std::move(scheme)) {
  rel_offset_.reserve(scheme_->size());
  for (RelId rel = 0; rel < scheme_->size(); ++rel) {
    rel_offset_.push_back(node_count_);
    node_count_ += scheme_->relation(rel).arity();
  }
  ind_.assign(node_count_, std::vector<bool>(node_count_, false));
  fd_.assign(node_count_, std::vector<bool>(node_count_, false));

  for (std::size_t u = 0; u < node_count_; ++u) {
    ind_[u][u] = true;  // IND1 reflexivity
    fd_[u][u] = true;   // FD reflexivity
  }
  for (const Fd& fd : fds) {
    Status st = Validate(*scheme_, fd);
    CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
    CCFP_CHECK_MSG(fd.lhs.size() == 1 && fd.rhs.size() == 1,
                   "UnaryFiniteImplication requires unary FDs");
    fd_[NodeId(fd.rel, fd.lhs[0])][NodeId(fd.rel, fd.rhs[0])] = true;
  }
  for (const Ind& ind : inds) {
    Status st = Validate(*scheme_, ind);
    CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
    CCFP_CHECK_MSG(ind.width() == 1,
                   "UnaryFiniteImplication requires unary INDs");
    ind_[NodeId(ind.lhs_rel, ind.lhs[0])][NodeId(ind.rhs_rel, ind.rhs[0])] =
        true;
  }
  Saturate();
}

std::pair<RelId, AttrId> UnaryFiniteImplication::NodeOf(
    std::size_t id) const {
  RelId rel = 0;
  while (rel + 1 < scheme_->size() && rel_offset_[rel + 1] <= id) ++rel;
  return {rel, static_cast<AttrId>(id - rel_offset_[rel])};
}

void UnaryFiniteImplication::TransitiveCloseInds() {
  // BFS per source over the current IND edges.
  for (std::size_t src = 0; src < node_count_; ++src) {
    std::deque<std::size_t> frontier;
    for (std::size_t v = 0; v < node_count_; ++v) {
      if (ind_[src][v]) frontier.push_back(v);
    }
    while (!frontier.empty()) {
      std::size_t u = frontier.front();
      frontier.pop_front();
      for (std::size_t v = 0; v < node_count_; ++v) {
        if (ind_[u][v] && !ind_[src][v]) {
          ind_[src][v] = true;
          frontier.push_back(v);
        }
      }
    }
  }
}

void UnaryFiniteImplication::TransitiveCloseFds() {
  for (std::size_t src = 0; src < node_count_; ++src) {
    std::deque<std::size_t> frontier;
    for (std::size_t v = 0; v < node_count_; ++v) {
      if (fd_[src][v]) frontier.push_back(v);
    }
    while (!frontier.empty()) {
      std::size_t u = frontier.front();
      frontier.pop_front();
      for (std::size_t v = 0; v < node_count_; ++v) {
        if (fd_[u][v] && !fd_[src][v]) {
          fd_[src][v] = true;
          frontier.push_back(v);
        }
      }
    }
  }
}

bool UnaryFiniteImplication::ReverseWithinSccs() {
  // <=-graph: IND u <= v contributes edge u -> v; FD u -> v contributes
  // edge v -> u (|v-column| <= |u-column|).
  std::vector<std::vector<std::size_t>> le(node_count_);
  for (std::size_t u = 0; u < node_count_; ++u) {
    for (std::size_t v = 0; v < node_count_; ++v) {
      if (u == v) continue;
      if (ind_[u][v]) le[u].push_back(v);
      if (fd_[u][v]) le[v].push_back(u);
    }
  }
  // SCCs by double BFS (Kosaraju): forward order via iterative DFS.
  std::vector<std::vector<std::size_t>> rle(node_count_);
  for (std::size_t u = 0; u < node_count_; ++u) {
    for (std::size_t v : le[u]) rle[v].push_back(u);
  }
  std::vector<int> state(node_count_, 0);
  std::vector<std::size_t> order;
  order.reserve(node_count_);
  for (std::size_t s = 0; s < node_count_; ++s) {
    if (state[s] != 0) continue;
    // Iterative DFS with explicit stack of (node, next-child-index).
    std::vector<std::pair<std::size_t, std::size_t>> stack{{s, 0}};
    state[s] = 1;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < le[u].size()) {
        std::size_t v = le[u][next++];
        if (state[v] == 0) {
          state[v] = 1;
          stack.emplace_back(v, 0);
        }
      } else {
        order.push_back(u);
        stack.pop_back();
      }
    }
  }
  std::vector<std::size_t> scc(node_count_, node_count_);
  std::size_t scc_count = 0;
  for (std::size_t i = order.size(); i-- > 0;) {
    std::size_t s = order[i];
    if (scc[s] != node_count_) continue;
    std::deque<std::size_t> frontier{s};
    scc[s] = scc_count;
    while (!frontier.empty()) {
      std::size_t u = frontier.front();
      frontier.pop_front();
      for (std::size_t v : rle[u]) {
        if (scc[v] == node_count_) {
          scc[v] = scc_count;
          frontier.push_back(v);
        }
      }
    }
    ++scc_count;
  }

  // Reverse every dependency whose endpoints share an SCC.
  bool added = false;
  for (std::size_t u = 0; u < node_count_; ++u) {
    for (std::size_t v = 0; v < node_count_; ++v) {
      if (scc[u] != scc[v]) continue;
      if (ind_[u][v] && !ind_[v][u]) {
        ind_[v][u] = true;
        added = true;
      }
      if (fd_[u][v] && !fd_[v][u]) {
        fd_[v][u] = true;
        added = true;
      }
    }
  }
  return added;
}

void UnaryFiniteImplication::Saturate() {
  bool changed = true;
  while (changed) {
    ++rounds_;
    TransitiveCloseInds();
    TransitiveCloseFds();
    changed = ReverseWithinSccs();
  }
}

bool UnaryFiniteImplication::Implies(const Fd& target) const {
  CCFP_CHECK_MSG(target.lhs.size() == 1 && target.rhs.size() == 1,
                 "target FD must be unary");
  return fd_[NodeId(target.rel, target.lhs[0])]
            [NodeId(target.rel, target.rhs[0])];
}

bool UnaryFiniteImplication::Implies(const Ind& target) const {
  CCFP_CHECK_MSG(target.width() == 1, "target IND must be unary");
  return ind_[NodeId(target.lhs_rel, target.lhs[0])]
             [NodeId(target.rhs_rel, target.rhs[0])];
}

bool UnaryFiniteImplication::Implies(const Dependency& target) const {
  if (target.is_fd()) return Implies(target.fd());
  if (target.is_ind()) return Implies(target.ind());
  CCFP_CHECK_MSG(false, "target must be a unary FD or IND");
  return false;
}

std::vector<Fd> UnaryFiniteImplication::ClosureFds() const {
  std::vector<Fd> out;
  for (std::size_t u = 0; u < node_count_; ++u) {
    for (std::size_t v = 0; v < node_count_; ++v) {
      if (!fd_[u][v]) continue;
      auto [r1, a1] = NodeOf(u);
      auto [r2, a2] = NodeOf(v);
      if (r1 != r2) continue;
      out.push_back(Fd{r1, {a1}, {a2}});
    }
  }
  return out;
}

std::vector<Ind> UnaryFiniteImplication::ClosureInds() const {
  std::vector<Ind> out;
  for (std::size_t u = 0; u < node_count_; ++u) {
    for (std::size_t v = 0; v < node_count_; ++v) {
      if (!ind_[u][v]) continue;
      auto [r1, a1] = NodeOf(u);
      auto [r2, a2] = NodeOf(v);
      out.push_back(Ind{r1, {a1}, r2, {a2}});
    }
  }
  return out;
}

}  // namespace ccfp

namespace ccfp_internal_guard {}  // keep clang-format stable

namespace ccfp {

UnaryUnrestrictedImplication::UnaryUnrestrictedImplication(
    SchemePtr scheme, const std::vector<Fd>& fds,
    const std::vector<Ind>& inds)
    : scheme_(std::move(scheme)), fds_(fds), inds_(inds) {
  for (const Fd& fd : fds_) {
    Status st = Validate(*scheme_, fd);
    CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
    CCFP_CHECK_MSG(fd.lhs.size() == 1 && fd.rhs.size() == 1,
                   "UnaryUnrestrictedImplication requires unary FDs with "
                   "nonempty lhs");
  }
  for (const Ind& ind : inds_) {
    Status st = Validate(*scheme_, ind);
    CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
    CCFP_CHECK_MSG(ind.width() == 1,
                   "UnaryUnrestrictedImplication requires unary INDs");
  }
}

bool UnaryUnrestrictedImplication::Implies(const Fd& target) const {
  // KCV: in this fragment the INDs contribute nothing to FD consequences.
  return FdImplies(*scheme_, fds_, target);
}

bool UnaryUnrestrictedImplication::Implies(const Ind& target) const {
  CCFP_CHECK_MSG(target.width() == 1, "target IND must be unary");
  UnaryIndGraph graph(scheme_, inds_);
  return graph.Implies(target);
}

bool UnaryUnrestrictedImplication::Implies(const Dependency& target) const {
  if (target.is_fd()) return Implies(target.fd());
  if (target.is_ind()) return Implies(target.ind());
  CCFP_CHECK_MSG(false, "target must be a unary FD or IND");
  return false;
}

}  // namespace ccfp
