#include "interact/finite_vs_unrestricted.h"

#include <algorithm>

#include "ind/implication.h"
#include "interact/unary_finite.h"

namespace ccfp {

namespace {

bool AllUnary(const std::vector<Fd>& fds, const std::vector<Ind>& inds,
              const Dependency& target) {
  for (const Fd& fd : fds) {
    if (fd.lhs.size() != 1 || fd.rhs.size() != 1) return false;
  }
  for (const Ind& ind : inds) {
    if (ind.width() != 1) return false;
  }
  if (target.is_fd()) {
    return target.fd().lhs.size() == 1 && target.fd().rhs.size() == 1;
  }
  if (target.is_ind()) return target.ind().width() == 1;
  return false;
}

}  // namespace

FiniteVsUnrestricted CompareImplication(SchemePtr scheme,
                                        const std::vector<Fd>& fds,
                                        const std::vector<Ind>& inds,
                                        const Dependency& target,
                                        const ChaseOptions& options) {
  FiniteVsUnrestricted out;

  // --- Unrestricted implication -------------------------------------------
  if (fds.empty() && target.is_ind()) {
    // Pure-IND instance: the Corollary 3.2 procedure is exact (and by
    // Theorem 3.1 also answers finite implication).
    IndImplication engine(scheme, inds);
    Result<IndDecision> decision = engine.Decide(target.ind());
    if (decision.ok()) {
      out.unrestricted = decision->implied ? ImplicationVerdict::kImplied
                                           : ImplicationVerdict::kNotImplied;
      out.unrestricted_engine = "ind-bfs (Corollary 3.2)";
      out.finite = out.unrestricted;  // Theorem 3.1: |= equals |=fin for INDs
      out.finite_engine = "ind-bfs (Theorem 3.1 equivalence)";
      return out;
    }
    out.unrestricted_engine = "ind-bfs (budget exhausted)";
  } else if (AllUnary(fds, inds, target) &&
             std::none_of(fds.begin(), fds.end(),
                          [](const Fd& fd) { return fd.lhs.empty(); })) {
    // Unary fragment: KCV — FDs and INDs do not interact unrestrictedly.
    UnaryUnrestrictedImplication engine(scheme, fds, inds);
    out.unrestricted = engine.Implies(target)
                           ? ImplicationVerdict::kImplied
                           : ImplicationVerdict::kNotImplied;
    out.unrestricted_engine = "unary non-interaction (KCV)";
  } else {
    Result<bool> chase = ChaseImplies(scheme, fds, inds, target, options);
    if (chase.ok()) {
      out.unrestricted = *chase ? ImplicationVerdict::kImplied
                                : ImplicationVerdict::kNotImplied;
      out.unrestricted_engine = "fd+ind chase (universal model)";
    } else {
      out.unrestricted_engine = "fd+ind chase (budget exhausted)";
    }
  }

  // --- Finite implication --------------------------------------------------
  if (AllUnary(fds, inds, target)) {
    UnaryFiniteImplication engine(scheme, fds, inds);
    out.finite = engine.Implies(target) ? ImplicationVerdict::kImplied
                                        : ImplicationVerdict::kNotImplied;
    out.finite_engine = "unary counting closure (KCV rules)";
  } else if (out.unrestricted == ImplicationVerdict::kImplied) {
    // |= implies |=fin always.
    out.finite = ImplicationVerdict::kImplied;
    out.finite_engine = "inherited from unrestricted verdict";
  } else {
    out.finite_engine = "no exact finite engine for this fragment";
  }
  return out;
}

FiniteVsUnrestricted CompareImplication(SchemePtr scheme,
                                        const std::vector<Fd>& fds,
                                        const std::vector<Ind>& inds,
                                        const Dependency& target,
                                        const Budget& budget) {
  return CompareImplication(std::move(scheme), fds, inds, target,
                            ChaseOptions::FromBudget(budget));
}

}  // namespace ccfp
