#ifndef CCFP_INTERACT_DERIVATION_H_
#define CCFP_INTERACT_DERIVATION_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/dependency.h"
#include "core/schema.h"
#include "util/budget.h"
#include "util/status.h"

namespace ccfp {

/// A forward-chaining derivation engine for mixed FD + IND (+ RD) sets,
/// with a fixed finite rule arsenal:
///   * Armstrong's axioms for FDs (answered via attribute closure);
///   * IND1/IND2/IND3 for INDs (answered via the Corollary 3.2 engine);
///   * the interaction rules of Propositions 4.1 (pullback), 4.2
///     (collection), and 4.3 (RD derivation), applied through IND2
///     projections that normalize the INDs into the rules' shapes;
///   * RD decomposition into unary RDs.
///
/// Every derived dependency is a sound consequence of Sigma under
/// unrestricted implication. The engine is *necessarily incomplete*: by
/// Theorem 7.1 of the paper, NO k-ary rule set is complete for FDs and
/// INDs, and the Section 7 construction makes this engine's gap concrete —
/// it derives phi piecemeal but cannot reach F: A -> C (see the tests and
/// the ablation benchmark).
class MixedDerivation {
 public:
  struct Options {
    std::size_t max_rounds = 6;
    /// Collection (Prop 4.2) can widen INDs; cap the width to keep the
    /// saturation finite.
    std::size_t max_ind_width = 3;
    std::uint64_t max_dependencies = 1u << 14;

    /// Maps the shared Budget vocabulary onto the saturation's knob
    /// (expressions -> max_dependencies; rounds and IND width are shape
    /// parameters of the rule arsenal, not resource budgets).
    static Options FromBudget(const Budget& budget) {
      Options options;
      options.max_dependencies = budget.expressions;
      return options;
    }
  };

  /// One line of the saturation trace, for explainability.
  struct Step {
    Dependency conclusion;
    std::string rule;
    std::vector<Dependency> premises;

    std::string ToString(const DatabaseScheme& scheme) const;
  };

  /// CHECK-fails on invalid dependencies; EMVD/MVD members are rejected
  /// with an error status from Saturate().
  MixedDerivation(SchemePtr scheme, std::vector<Dependency> sigma,
                  Options options);
  /// Default-options overload (separate signature: a nested class with
  /// default member initializers cannot be a default argument in its own
  /// enclosing class).
  MixedDerivation(SchemePtr scheme, std::vector<Dependency> sigma);
  /// Budget-vocabulary overload.
  MixedDerivation(SchemePtr scheme, std::vector<Dependency> sigma,
                  const Budget& budget);

  /// Derived sentences so far (for BudgetUse reporting).
  std::uint64_t dependency_count() const {
    return fds_.size() + inds_.size() + rds_.size();
  }

  /// Runs the saturation to fixpoint (or budget). Idempotent.
  Status Saturate();

  /// Does the saturated set derive `target`? FD targets are answered by
  /// attribute closure over the derived FDs, IND targets by the IND engine
  /// over the derived INDs, RD targets by unary-RD membership (trivial RDs
  /// always derive). Requires Saturate() to have succeeded.
  bool Derives(const Dependency& target) const;

  /// Derived FDs / INDs / RDs materialized by the interaction rules
  /// (hypotheses included).
  const std::vector<Fd>& fds() const { return fds_; }
  const std::vector<Ind>& inds() const { return inds_; }
  const std::vector<Rd>& rds() const { return rds_; }

  /// Interaction-rule applications, in derivation order.
  const std::vector<Step>& trace() const { return trace_; }

 private:
  bool AddFd(Fd fd, const char* rule, std::vector<Dependency> premises);
  bool AddInd(Ind ind, const char* rule, std::vector<Dependency> premises);
  bool AddRd(Rd rd, const char* rule, std::vector<Dependency> premises);

  /// One saturation round; returns true if anything was added.
  Result<bool> Round();

  SchemePtr scheme_;
  Options options_;
  bool saturated_ = false;
  bool unsupported_ = false;

  std::vector<Fd> fds_;
  std::vector<Ind> inds_;
  std::vector<Rd> rds_;
  std::unordered_set<Dependency, DependencyHash> seen_;
  std::vector<Step> trace_;
};

}  // namespace ccfp

#endif  // CCFP_INTERACT_DERIVATION_H_
