#ifndef CCFP_INTERACT_RULES_H_
#define CCFP_INTERACT_RULES_H_

#include <vector>

#include "core/dependency.h"
#include "core/schema.h"
#include "util/status.h"

namespace ccfp {

/// Sound inference rules describing the interaction of FDs and INDs
/// (Section 4 of the paper).

/// Proposition 4.1 ("pullback"): from R[XY] <= S[TU] and S: T -> U infer
/// R: X -> Y.
///
/// Implemented in the natural position-generalized form: given an IND
/// R[W] <= S[V] and an FD S: T -> U with every attribute of T and U
/// occurring in V, infer R: W@pos(T) -> W@pos(U) (where @pos maps each FD
/// attribute through its position in V back to the IND's left side). The
/// paper's statement is the special case V = TU.
Result<Fd> ApplyPullback(const DatabaseScheme& scheme, const Ind& ind,
                         const Fd& fd);

/// Proposition 4.2 ("collection"): from R[XY] <= S[TU], R[XZ] <= S[TV] and
/// S: T -> U infer R[XYZ] <= S[TUV]. Implemented in the paper's literal
/// prefix form: fd.lhs must be the length-|T| prefix of both right-hand
/// sides, fd.rhs the remaining suffix of ind_xy's right-hand side, and both
/// INDs must share the same length-|T| left prefix X. Fails (InvalidArgument)
/// if the concatenations repeat attributes.
Result<Ind> ApplyCollection(const DatabaseScheme& scheme, const Ind& ind_xy,
                            const Ind& ind_xz, const Fd& fd);

/// Proposition 4.3 (degenerate collection): from R[XY] <= S[TU] and
/// R[XZ] <= S[TU] (same right-hand side) and S: T -> U infer the repeating
/// dependency R[Y = Z].
Result<Rd> DeriveRd(const DatabaseScheme& scheme, const Ind& ind_xy,
                    const Ind& ind_xz, const Fd& fd);

/// Section 4: "the RD R[A1..Am = B1..Bm] is equivalent to the set
/// {R[Ai = Bi] : i = 1..m} of unary RDs". Splits an RD accordingly.
std::vector<Rd> SplitRd(const Rd& rd);

/// The FD and IND consequences of a single RD: R[X = Y] implies the FDs
/// X -> Y and Y -> X and the INDs R[X] <= R[Y] and R[Y] <= R[X] (plus the
/// symmetric RD). A nontrivial RD is *strictly stronger* than this set —
/// the paper notes RDs are not equivalent to any set of FDs and INDs — and
/// the tests exhibit a separating database.
std::vector<Dependency> RdConsequences(const DatabaseScheme& scheme,
                                       const Rd& rd);

}  // namespace ccfp

#endif  // CCFP_INTERACT_RULES_H_
