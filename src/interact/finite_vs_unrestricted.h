#ifndef CCFP_INTERACT_FINITE_VS_UNRESTRICTED_H_
#define CCFP_INTERACT_FINITE_VS_UNRESTRICTED_H_

#include <string>
#include <vector>

#include "chase/chase.h"
#include "core/dependency.h"
#include "core/schema.h"
#include "core/verdict.h"
#include "util/budget.h"

namespace ccfp {

/// Side-by-side answers for |= and |=fin, exhibiting the paper's Section 4
/// phenomenon that the two notions differ for FDs and INDs taken together.
struct FiniteVsUnrestricted {
  ImplicationVerdict unrestricted = ImplicationVerdict::kUnknown;
  ImplicationVerdict finite = ImplicationVerdict::kUnknown;
  /// Which engines produced the verdicts (for reporting).
  std::string unrestricted_engine;
  std::string finite_engine;
};

/// Compares Sigma |= target against Sigma |=fin target using the best
/// available engines:
///   * unrestricted: exact IND engine when Sigma and target are pure INDs;
///     otherwise the (budgeted) chase semi-decision;
///   * finite: the unary counting engine when everything is unary;
///     otherwise inherited from the unrestricted verdict when that verdict
///     is kImplied (|= implies |=fin — Section 2 of the paper).
FiniteVsUnrestricted CompareImplication(SchemePtr scheme,
                                        const std::vector<Fd>& fds,
                                        const std::vector<Ind>& inds,
                                        const Dependency& target,
                                        const ChaseOptions& options = {});

/// Budget-vocabulary overload (the chase stage maps Budget::steps/tuples
/// onto its step/tuple caps). Prefer this in new code.
FiniteVsUnrestricted CompareImplication(SchemePtr scheme,
                                        const std::vector<Fd>& fds,
                                        const std::vector<Ind>& inds,
                                        const Dependency& target,
                                        const Budget& budget);

}  // namespace ccfp

#endif  // CCFP_INTERACT_FINITE_VS_UNRESTRICTED_H_
