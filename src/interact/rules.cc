#include "interact/rules.h"

#include <algorithm>

#include "util/strings.h"

namespace ccfp {

namespace {

// Position of `attr` in `seq`, or npos.
std::size_t PosOf(const std::vector<AttrId>& seq, AttrId attr) {
  auto it = std::find(seq.begin(), seq.end(), attr);
  return it == seq.end() ? static_cast<std::size_t>(-1)
                         : static_cast<std::size_t>(it - seq.begin());
}

}  // namespace

Result<Fd> ApplyPullback(const DatabaseScheme& scheme, const Ind& ind,
                         const Fd& fd) {
  CCFP_RETURN_NOT_OK(Validate(scheme, ind));
  CCFP_RETURN_NOT_OK(Validate(scheme, fd));
  if (fd.rel != ind.rhs_rel) {
    return Status::InvalidArgument(
        "pullback needs the FD on the IND's right-hand relation");
  }
  Fd out;
  out.rel = ind.lhs_rel;
  for (AttrId t : fd.lhs) {
    std::size_t p = PosOf(ind.rhs, t);
    if (p == static_cast<std::size_t>(-1)) {
      return Status::InvalidArgument(
          StrCat("FD lhs attribute '",
                 scheme.relation(fd.rel).attr_name(t),
                 "' does not occur in the IND right-hand side"));
    }
    out.lhs.push_back(ind.lhs[p]);
  }
  for (AttrId u : fd.rhs) {
    std::size_t p = PosOf(ind.rhs, u);
    if (p == static_cast<std::size_t>(-1)) {
      return Status::InvalidArgument(
          StrCat("FD rhs attribute '",
                 scheme.relation(fd.rel).attr_name(u),
                 "' does not occur in the IND right-hand side"));
    }
    out.rhs.push_back(ind.lhs[p]);
  }
  CCFP_RETURN_NOT_OK(Validate(scheme, out));
  return out;
}

namespace {

// Shared precondition of Propositions 4.2/4.3: both INDs go R -> S, fd.lhs
// is the common rhs prefix (length |T|), and the lhs prefixes X agree.
Status CheckCollectionShape(const DatabaseScheme& scheme, const Ind& ind_xy,
                            const Ind& ind_xz, const Fd& fd) {
  CCFP_RETURN_NOT_OK(Validate(scheme, ind_xy));
  CCFP_RETURN_NOT_OK(Validate(scheme, ind_xz));
  CCFP_RETURN_NOT_OK(Validate(scheme, fd));
  if (ind_xy.lhs_rel != ind_xz.lhs_rel ||
      ind_xy.rhs_rel != ind_xz.rhs_rel || fd.rel != ind_xy.rhs_rel) {
    return Status::InvalidArgument(
        "collection needs two INDs R -> S and an FD on S");
  }
  const std::size_t t_len = fd.lhs.size();
  if (ind_xy.width() < t_len || ind_xz.width() < t_len) {
    return Status::InvalidArgument("INDs narrower than the FD lhs");
  }
  for (std::size_t i = 0; i < t_len; ++i) {
    if (ind_xy.rhs[i] != fd.lhs[i] || ind_xz.rhs[i] != fd.lhs[i]) {
      return Status::InvalidArgument(
          "fd.lhs must be the prefix of both IND right-hand sides");
    }
    if (ind_xy.lhs[i] != ind_xz.lhs[i]) {
      return Status::InvalidArgument(
          "the INDs must share the same left-hand prefix X");
    }
  }
  // ind_xy must be exactly R[XY] <= S[TU] with U = fd.rhs.
  if (ind_xy.width() != t_len + fd.rhs.size()) {
    return Status::InvalidArgument(
        "first IND right side must be exactly T followed by U");
  }
  for (std::size_t i = 0; i < fd.rhs.size(); ++i) {
    if (ind_xy.rhs[t_len + i] != fd.rhs[i]) {
      return Status::InvalidArgument(
          "first IND right side suffix must equal fd.rhs");
    }
  }
  return Status::OK();
}

}  // namespace

Result<Ind> ApplyCollection(const DatabaseScheme& scheme, const Ind& ind_xy,
                            const Ind& ind_xz, const Fd& fd) {
  CCFP_RETURN_NOT_OK(CheckCollectionShape(scheme, ind_xy, ind_xz, fd));
  const std::size_t t_len = fd.lhs.size();
  Ind out;
  out.lhs_rel = ind_xy.lhs_rel;
  out.rhs_rel = ind_xy.rhs_rel;
  // lhs: X ++ Y ++ Z ; rhs: T ++ U ++ V.
  out.lhs = ind_xy.lhs;  // X ++ Y
  out.rhs = ind_xy.rhs;  // T ++ U
  for (std::size_t i = t_len; i < ind_xz.width(); ++i) {
    out.lhs.push_back(ind_xz.lhs[i]);  // Z
    out.rhs.push_back(ind_xz.rhs[i]);  // V
  }
  CCFP_RETURN_NOT_OK(Validate(scheme, out));
  return out;
}

Result<Rd> DeriveRd(const DatabaseScheme& scheme, const Ind& ind_xy,
                    const Ind& ind_xz, const Fd& fd) {
  CCFP_RETURN_NOT_OK(CheckCollectionShape(scheme, ind_xy, ind_xz, fd));
  // Degenerate case: both INDs share the whole right-hand side T ++ U.
  if (ind_xy.rhs != ind_xz.rhs) {
    return Status::InvalidArgument(
        "Proposition 4.3 needs both INDs to share the right-hand side TU");
  }
  const std::size_t t_len = fd.lhs.size();
  Rd out;
  out.rel = ind_xy.lhs_rel;
  for (std::size_t i = t_len; i < ind_xy.width(); ++i) {
    out.lhs.push_back(ind_xy.lhs[i]);  // Y
    out.rhs.push_back(ind_xz.lhs[i]);  // Z
  }
  CCFP_RETURN_NOT_OK(Validate(scheme, out));
  return out;
}

std::vector<Rd> SplitRd(const Rd& rd) {
  std::vector<Rd> out;
  out.reserve(rd.lhs.size());
  for (std::size_t i = 0; i < rd.lhs.size(); ++i) {
    out.push_back(Rd{rd.rel, {rd.lhs[i]}, {rd.rhs[i]}});
  }
  return out;
}

std::vector<Dependency> RdConsequences(const DatabaseScheme& scheme,
                                       const Rd& rd) {
  std::vector<Dependency> out;
  if (rd.lhs.empty()) return out;
  // FDs both ways: if t[X] always equals t[Y], then agreeing on X is
  // agreeing on Y and vice versa.
  Fd forward{rd.rel, rd.lhs, rd.rhs};
  Fd backward{rd.rel, rd.rhs, rd.lhs};
  if (Validate(scheme, forward).ok()) out.push_back(Dependency(forward));
  if (Validate(scheme, backward).ok()) out.push_back(Dependency(backward));
  // INDs both ways: every X-projection is (equal to) a Y-projection of the
  // same tuple.
  Ind fwd_ind{rd.rel, rd.lhs, rd.rel, rd.rhs};
  Ind bwd_ind{rd.rel, rd.rhs, rd.rel, rd.lhs};
  if (Validate(scheme, fwd_ind).ok()) out.push_back(Dependency(fwd_ind));
  if (Validate(scheme, bwd_ind).ok()) out.push_back(Dependency(bwd_ind));
  // The mirrored RD.
  out.push_back(Dependency(Rd{rd.rel, rd.rhs, rd.lhs}));
  return out;
}

}  // namespace ccfp
