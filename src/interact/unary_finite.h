#ifndef CCFP_INTERACT_UNARY_FINITE_H_
#define CCFP_INTERACT_UNARY_FINITE_H_

#include <cstdint>
#include <vector>

#include "core/dependency.h"
#include "core/schema.h"

namespace ccfp {

/// Finite-implication engine for *unary* FDs and *unary* INDs, implementing
/// the cardinality-cycle ("counting") rules that power Theorem 4.4 and the
/// soundness half of Theorem 6.1, and that Kanellakis, Cosmadakis, and Vardi
/// [KCV] proved complete (with Armstrong + IND transitivity) for finite
/// implication of unary dependencies — in polynomial time, in contrast with
/// the non-existence of any k-ary axiomatization (Theorem 6.1).
///
/// The counting argument: over columns (relation, attribute),
///   * a unary IND  R[A] <= S[B] forces |r[A]| <= |s[B]|,
///   * a unary FD   R: A -> B   forces |r[B]| <= |r[A]|,
/// so any *cycle* in the resulting <=-graph forces equal cardinalities all
/// around, and on finite databases equal-cardinality containments / surjective
/// functions invert:
///   * IND R[A] <= S[B] with |r[A]| = |s[B]| gives S[B] <= R[A];
///   * FD  R: A -> B   with |r[A]| = |r[B]| gives R: B -> A.
/// The engine saturates: (FD/IND transitive closure) + (reverse every
/// dependency whose two columns share an SCC of the <=-graph), to fixpoint.
class UnaryFiniteImplication {
 public:
  /// CHECK-fails if any dependency is not unary or invalid.
  UnaryFiniteImplication(SchemePtr scheme, const std::vector<Fd>& fds,
                         const std::vector<Ind>& inds);

  /// Sigma |=fin target (target must be unary and on `scheme`).
  bool Implies(const Fd& target) const;
  bool Implies(const Ind& target) const;
  bool Implies(const Dependency& target) const;

  /// All unary FDs / INDs in the finite closure (including trivial ones).
  std::vector<Fd> ClosureFds() const;
  std::vector<Ind> ClosureInds() const;

  /// Saturation rounds until fixpoint (for benchmarks).
  std::uint64_t rounds() const { return rounds_; }

 private:
  std::size_t NodeId(RelId rel, AttrId attr) const {
    return rel_offset_[rel] + attr;
  }
  std::pair<RelId, AttrId> NodeOf(std::size_t id) const;

  void Saturate();
  void TransitiveCloseInds();
  void TransitiveCloseFds();
  /// Returns true if any dependency was added.
  bool ReverseWithinSccs();

  SchemePtr scheme_;
  std::vector<std::size_t> rel_offset_;
  std::size_t node_count_ = 0;
  // ind_[u][v]: the IND col(u) <= col(v) is in the closure.
  std::vector<std::vector<bool>> ind_;
  // fd_[u][v]: the FD col(u) -> col(v) is in the closure (u, v same rel).
  std::vector<std::vector<bool>> fd_;
  std::uint64_t rounds_ = 0;
};

/// *Unrestricted*-implication engine for unary FDs (nonempty lhs) and unary
/// INDs. Over unrestricted (possibly infinite) databases the counting rules
/// are unsound and, per Kanellakis–Cosmadakis–Vardi, the two dependency
/// families do not interact in this fragment: Sigma |= sigma iff the FDs
/// alone imply an FD target / the INDs alone imply an IND target. (Compare
/// Theorem 4.4 of the paper: the finite-only consequences come exactly from
/// the counting rules this engine omits.)
///
/// Empty-lhs ("constant-column") FDs are rejected: they re-introduce
/// interaction (a constant column propagates backwards through an IND) and
/// fall outside the fragment this engine is exact for.
class UnaryUnrestrictedImplication {
 public:
  /// CHECK-fails if any dependency is not unary, has an empty lhs, or is
  /// invalid.
  UnaryUnrestrictedImplication(SchemePtr scheme, const std::vector<Fd>& fds,
                               const std::vector<Ind>& inds);

  bool Implies(const Fd& target) const;
  bool Implies(const Ind& target) const;
  bool Implies(const Dependency& target) const;

 private:
  SchemePtr scheme_;
  std::vector<Fd> fds_;
  std::vector<Ind> inds_;
};

}  // namespace ccfp

#endif  // CCFP_INTERACT_UNARY_FINITE_H_
