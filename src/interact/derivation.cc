#include "interact/derivation.h"

#include <algorithm>
#include <set>

#include "fd/closure.h"
#include "ind/implication.h"
#include "ind/rules.h"
#include "interact/rules.h"
#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

namespace {

// Position of `attr` in `seq`, or npos.
std::size_t PosOf(const std::vector<AttrId>& seq, AttrId attr) {
  auto it = std::find(seq.begin(), seq.end(), attr);
  return it == seq.end() ? static_cast<std::size_t>(-1)
                         : static_cast<std::size_t>(it - seq.begin());
}

// All nonempty sorted subsets of `attrs` (attrs must be sorted).
std::vector<std::vector<AttrId>> SortedSubsets(std::vector<AttrId> attrs) {
  std::sort(attrs.begin(), attrs.end());
  std::vector<std::vector<AttrId>> out;
  std::size_t n = attrs.size();
  for (std::size_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<AttrId> subset;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) subset.push_back(attrs[i]);
    }
    out.push_back(std::move(subset));
  }
  return out;
}

}  // namespace

std::string MixedDerivation::Step::ToString(
    const DatabaseScheme& scheme) const {
  return StrCat(conclusion.ToString(scheme), "   [", rule, " of {",
                JoinMapped(premises, "; ",
                           [&](const Dependency& d) {
                             return d.ToString(scheme);
                           }),
                "}]");
}

MixedDerivation::MixedDerivation(SchemePtr scheme,
                                 std::vector<Dependency> sigma)
    : MixedDerivation(std::move(scheme), std::move(sigma), Options()) {}

MixedDerivation::MixedDerivation(SchemePtr scheme,
                                 std::vector<Dependency> sigma,
                                 const Budget& budget)
    : MixedDerivation(std::move(scheme), std::move(sigma),
                      Options::FromBudget(budget)) {}

MixedDerivation::MixedDerivation(SchemePtr scheme,
                                 std::vector<Dependency> sigma,
                                 Options options)
    : scheme_(std::move(scheme)), options_(options) {
  for (Dependency& dep : sigma) {
    Status st = Validate(*scheme_, dep);
    CCFP_CHECK_MSG(st.ok(), st.ToString().c_str());
    if (dep.is_fd()) {
      AddFd(dep.fd(), "hypothesis", {});
    } else if (dep.is_ind()) {
      AddInd(dep.ind(), "hypothesis", {});
    } else if (dep.is_rd()) {
      AddRd(dep.rd(), "hypothesis", {});
    } else {
      // EMVD/MVD hypotheses are outside the arsenal; Saturate() reports it.
      unsupported_ = true;
    }
  }
}

bool MixedDerivation::AddFd(Fd fd, const char* rule,
                            std::vector<Dependency> premises) {
  Dependency dep(fd);
  if (!seen_.insert(dep).second) return false;
  if (std::string(rule) != "hypothesis") {
    trace_.push_back(Step{dep, rule, std::move(premises)});
  }
  fds_.push_back(std::move(fd));
  return true;
}

bool MixedDerivation::AddInd(Ind ind, const char* rule,
                             std::vector<Dependency> premises) {
  Dependency dep(ind);
  if (!seen_.insert(dep).second) return false;
  if (std::string(rule) != "hypothesis") {
    trace_.push_back(Step{dep, rule, std::move(premises)});
  }
  inds_.push_back(std::move(ind));
  return true;
}

bool MixedDerivation::AddRd(Rd rd, const char* rule,
                            std::vector<Dependency> premises) {
  bool added = false;
  // Store unary splits, both orientations (R[X=Y] iff R[Y=X]).
  for (const Rd& unary : SplitRd(rd)) {
    for (const Rd& oriented :
         {unary, Rd{unary.rel, unary.rhs, unary.lhs}}) {
      Dependency dep(oriented);
      if (seen_.insert(dep).second) {
        if (std::string(rule) != "hypothesis") {
          trace_.push_back(Step{dep, rule, premises});
        }
        rds_.push_back(oriented);
        added = true;
      }
    }
  }
  return added;
}

Result<bool> MixedDerivation::Round() {
  bool changed = false;
  // Snapshot: new facts participate from the next round on.
  const std::vector<Ind> inds_snapshot = inds_;
  const std::vector<Fd> fds_snapshot = fds_;

  auto budget_ok = [&]() {
    return seen_.size() <= options_.max_dependencies;
  };

  // --- Proposition 4.1 (pullback), closed over the current FD set --------
  for (const Ind& ind : inds_snapshot) {
    FdClosure closure(*scheme_, ind.rhs_rel, fds_snapshot);
    for (std::vector<AttrId>& t : SortedSubsets(ind.rhs)) {
      std::vector<AttrId> t_closure = closure.Closure(t);
      // U = (closure(T) intersect rhs-attrs) - T.
      std::vector<AttrId> u;
      for (AttrId a : t_closure) {
        if (PosOf(ind.rhs, a) == static_cast<std::size_t>(-1)) continue;
        if (std::find(t.begin(), t.end(), a) != t.end()) continue;
        u.push_back(a);
      }
      if (u.empty()) continue;
      Fd fd{ind.rhs_rel, t, u};
      Result<Fd> pulled = ApplyPullback(*scheme_, ind, fd);
      if (!pulled.ok()) continue;
      if (AddFd(*pulled, "Prop 4.1 (pullback)",
                {Dependency(ind), Dependency(fd)})) {
        changed = true;
      }
      if (!budget_ok()) {
        return Status::ResourceExhausted("derivation budget exhausted");
      }
    }
  }

  // --- Propositions 4.2 / 4.3, with IND2 normalization ---------------------
  for (const Ind& ind1 : inds_snapshot) {
    for (const Ind& ind2 : inds_snapshot) {
      if (ind1.lhs_rel != ind2.lhs_rel || ind1.rhs_rel != ind2.rhs_rel) {
        continue;
      }
      FdClosure closure(*scheme_, ind1.rhs_rel, fds_snapshot);
      // Candidate T: subsets of rhs(ind1) that also lie inside rhs(ind2).
      for (std::vector<AttrId>& t : SortedSubsets(ind1.rhs)) {
        bool t_in_ind2 = true;
        for (AttrId a : t) {
          if (PosOf(ind2.rhs, a) == static_cast<std::size_t>(-1)) {
            t_in_ind2 = false;
            break;
          }
        }
        if (!t_in_ind2) continue;
        std::vector<AttrId> t_closure = closure.Closure(t);
        std::vector<AttrId> u;
        for (AttrId a : t_closure) {
          if (PosOf(ind1.rhs, a) == static_cast<std::size_t>(-1)) continue;
          if (std::find(t.begin(), t.end(), a) != t.end()) continue;
          u.push_back(a);
        }
        if (u.empty()) continue;
        Fd fd{ind1.rhs_rel, t, u};

        // ind1' = project ind1 onto rhs positions [T, U].
        std::vector<std::size_t> pos1;
        for (AttrId a : t) pos1.push_back(PosOf(ind1.rhs, a));
        for (AttrId a : u) pos1.push_back(PosOf(ind1.rhs, a));
        Result<Ind> ind1p = IndProjectPermute(*scheme_, ind1, pos1);
        if (!ind1p.ok()) continue;

        // Proposition 4.3: ind2'' = project ind2 onto [T, U] if possible.
        {
          std::vector<std::size_t> pos2;
          bool ok = true;
          for (AttrId a : t) pos2.push_back(PosOf(ind2.rhs, a));
          for (AttrId a : u) {
            std::size_t p = PosOf(ind2.rhs, a);
            if (p == static_cast<std::size_t>(-1)) {
              ok = false;
              break;
            }
            pos2.push_back(p);
          }
          if (ok) {
            Result<Ind> ind2pp = IndProjectPermute(*scheme_, ind2, pos2);
            if (ind2pp.ok()) {
              Result<Rd> rd = DeriveRd(*scheme_, *ind1p, *ind2pp, fd);
              if (rd.ok() &&
                  AddRd(*rd, "Prop 4.3 (repeating)",
                        {Dependency(ind1), Dependency(ind2),
                         Dependency(fd)})) {
                changed = true;
              }
            }
          }
        }

        // Proposition 4.2: ind2' = project ind2 onto [T, rest-of-ind2].
        std::vector<std::size_t> pos2;
        for (AttrId a : t) pos2.push_back(PosOf(ind2.rhs, a));
        for (std::size_t p = 0; p < ind2.rhs.size(); ++p) {
          if (std::find(t.begin(), t.end(), ind2.rhs[p]) == t.end()) {
            pos2.push_back(p);
          }
        }
        Result<Ind> ind2p = IndProjectPermute(*scheme_, ind2, pos2);
        if (!ind2p.ok()) continue;
        Result<Ind> collected =
            ApplyCollection(*scheme_, *ind1p, *ind2p, fd);
        if (collected.ok() &&
            collected->width() <= options_.max_ind_width &&
            AddInd(*collected, "Prop 4.2 (collection)",
                   {Dependency(ind1), Dependency(ind2), Dependency(fd)})) {
          changed = true;
        }
        if (!budget_ok()) {
          return Status::ResourceExhausted("derivation budget exhausted");
        }
      }
    }
  }
  return changed;
}

Status MixedDerivation::Saturate() {
  if (saturated_) return Status::OK();
  if (unsupported_) {
    return Status::Unimplemented(
        "MixedDerivation handles FD, IND, and RD hypotheses only");
  }
  for (std::size_t round = 0; round < options_.max_rounds; ++round) {
    CCFP_ASSIGN_OR_RETURN(bool changed, Round());
    if (!changed) break;
  }
  saturated_ = true;
  return Status::OK();
}

bool MixedDerivation::Derives(const Dependency& target) const {
  CCFP_CHECK_MSG(saturated_, "call Saturate() first");
  if (IsTrivial(*scheme_, target)) return true;
  switch (target.kind()) {
    case DependencyKind::kFd:
      return FdImplies(*scheme_, fds_, target.fd());
    case DependencyKind::kInd: {
      IndImplication engine(scheme_, inds_);
      // The BFS draws on this engine's own budget knob (the expression
      // walk is work of the same kind as deriving sentences). Exhausting
      // it answers "not derived" — sound, since this engine is
      // necessarily incomplete anyway (Theorem 7.1).
      IndDecisionOptions options;
      options.max_expressions = options_.max_dependencies;
      Result<bool> implied = engine.Implies(target.ind(), options);
      return implied.ok() && *implied;
    }
    case DependencyKind::kRd: {
      for (const Rd& unary : SplitRd(target.rd())) {
        if (unary.lhs == unary.rhs) continue;  // trivial component
        Dependency dep(unary);
        bool found = false;
        for (const Rd& have : rds_) {
          if (Dependency(have) == dep) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

}  // namespace ccfp
