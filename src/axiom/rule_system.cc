#include "axiom/rule_system.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "ind/rules.h"
#include "util/strings.h"

namespace ccfp {

std::string GenericRule::ToString(const DatabaseScheme& scheme) const {
  if (antecedents.empty()) {
    return StrCat("axiom: ", consequent.ToString(scheme));
  }
  return StrCat("if {",
                JoinMapped(antecedents, "; ",
                           [&](const Dependency& d) {
                             return d.ToString(scheme);
                           }),
                "} then ", consequent.ToString(scheme));
}

std::size_t RuleSystem::MaxArity() const {
  std::size_t max_arity = 0;
  for (const GenericRule& rule : rules_) {
    max_arity = std::max(max_arity, rule.arity());
  }
  return max_arity;
}

Status RuleSystem::CheckSoundness(const ImplicationOracle& oracle,
                                  const DatabaseScheme& scheme) const {
  for (const GenericRule& rule : rules_) {
    ImplicationVerdict verdict =
        oracle.Implies(rule.antecedents, rule.consequent);
    if (verdict == ImplicationVerdict::kNotImplied) {
      return Status::InvalidArgument(
          StrCat("unsound rule: ", rule.ToString(scheme)));
    }
    if (verdict == ImplicationVerdict::kUnknown) {
      return Status::FailedPrecondition(
          StrCat("soundness unverifiable by oracle '", oracle.name(),
                 "' for rule: ", rule.ToString(scheme)));
    }
  }
  return Status::OK();
}

std::vector<Dependency> RuleSystem::DeriveAll(
    const std::vector<Dependency>& sigma) const {
  std::unordered_set<Dependency, DependencyHash> derived(sigma.begin(),
                                                         sigma.end());
  std::vector<Dependency> ordered(sigma.begin(), sigma.end());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const GenericRule& rule : rules_) {
      if (derived.count(rule.consequent) > 0) continue;
      bool applicable = true;
      for (const Dependency& a : rule.antecedents) {
        if (derived.count(a) == 0) {
          applicable = false;
          break;
        }
      }
      if (applicable) {
        derived.insert(rule.consequent);
        ordered.push_back(rule.consequent);
        changed = true;
      }
    }
  }
  return ordered;
}

bool RuleSystem::Derives(const std::vector<Dependency>& sigma,
                         const Dependency& tau) const {
  std::vector<Dependency> all = DeriveAll(sigma);
  return std::find(all.begin(), all.end(), tau) != all.end();
}

namespace {

void ForEachExpression(
    const DatabaseScheme& scheme, std::size_t max_width,
    const std::function<void(RelId, const std::vector<AttrId>&)>& fn) {
  for (RelId rel = 0; rel < scheme.size(); ++rel) {
    std::size_t arity = scheme.relation(rel).arity();
    std::vector<AttrId> current;
    std::vector<bool> used(arity, false);
    std::function<void()> rec = [&]() {
      if (!current.empty()) fn(rel, current);
      if (current.size() >= max_width) return;
      for (AttrId a = 0; a < arity; ++a) {
        if (used[a]) continue;
        used[a] = true;
        current.push_back(a);
        rec();
        current.pop_back();
        used[a] = false;
      }
    };
    rec();
  }
}

void ForEachPositionSequence(
    std::size_t width,
    const std::function<void(const std::vector<std::size_t>&)>& fn) {
  std::vector<std::size_t> current;
  std::vector<bool> used(width, false);
  std::function<void()> rec = [&]() {
    if (!current.empty()) fn(current);
    if (current.size() >= width) return;
    for (std::size_t p = 0; p < width; ++p) {
      if (used[p]) continue;
      used[p] = true;
      current.push_back(p);
      rec();
      current.pop_back();
      used[p] = false;
    }
  };
  rec();
}

}  // namespace

std::vector<GenericRule> InstantiateIndRules(const DatabaseScheme& scheme,
                                             std::size_t max_width) {
  std::vector<GenericRule> rules;

  // Collect all expressions once.
  std::vector<std::pair<RelId, std::vector<AttrId>>> exprs;
  ForEachExpression(scheme, max_width,
                    [&](RelId rel, const std::vector<AttrId>& attrs) {
                      exprs.emplace_back(rel, attrs);
                    });

  // IND1 (0-ary axioms).
  for (const auto& [rel, attrs] : exprs) {
    rules.push_back(GenericRule{{}, Dependency(Ind{rel, attrs, rel, attrs})});
  }

  // IND2 (1-ary): every base IND of width <= max_width, every proper or
  // improper position selection.
  for (const auto& [r1, lhs] : exprs) {
    for (const auto& [r2, rhs] : exprs) {
      if (lhs.size() != rhs.size()) continue;
      Ind base{r1, lhs, r2, rhs};
      ForEachPositionSequence(
          base.width(), [&](const std::vector<std::size_t>& positions) {
            Result<Ind> derived = IndProjectPermute(scheme, base, positions);
            if (!derived.ok()) return;
            if (*derived == base) return;  // skip identity instances
            rules.push_back(
                GenericRule{{Dependency(base)}, Dependency(*derived)});
          });
    }
  }

  // IND3 (2-ary): composable pairs through a shared middle expression.
  for (const auto& [r1, lhs] : exprs) {
    for (const auto& [r2, mid] : exprs) {
      if (lhs.size() != mid.size()) continue;
      Ind first{r1, lhs, r2, mid};
      for (const auto& [r3, rhs] : exprs) {
        if (mid.size() != rhs.size()) continue;
        Ind second{r2, mid, r3, rhs};
        Result<Ind> composed = IndTransitivity(scheme, first, second);
        if (!composed.ok()) continue;
        rules.push_back(GenericRule{{Dependency(first), Dependency(second)},
                                    Dependency(*composed)});
      }
    }
  }

  return rules;
}

std::vector<GenericRule> InstantiateUnaryFdIndRules(
    const DatabaseScheme& scheme) {
  std::vector<GenericRule> rules;

  // Column catalogue.
  std::vector<std::pair<RelId, AttrId>> columns;
  for (RelId rel = 0; rel < scheme.size(); ++rel) {
    for (AttrId a = 0; a < scheme.relation(rel).arity(); ++a) {
      columns.emplace_back(rel, a);
    }
  }

  // Unary FD reflexivity (axioms) and transitivity, per relation.
  for (const auto& [rel, a] : columns) {
    rules.push_back(GenericRule{{}, Dependency(Fd{rel, {a}, {a}})});
  }
  for (const auto& [rel, a] : columns) {
    for (AttrId b = 0; b < scheme.relation(rel).arity(); ++b) {
      for (AttrId c = 0; c < scheme.relation(rel).arity(); ++c) {
        if (a == b || b == c) continue;
        rules.push_back(GenericRule{{Dependency(Fd{rel, {a}, {b}}),
                                     Dependency(Fd{rel, {b}, {c}})},
                                    Dependency(Fd{rel, {a}, {c}})});
      }
    }
  }

  // Unary IND reflexivity (axioms) and transitivity, across relations.
  for (const auto& [rel, a] : columns) {
    rules.push_back(GenericRule{{}, Dependency(Ind{rel, {a}, rel, {a}})});
  }
  for (const auto& [r1, a1] : columns) {
    for (const auto& [r2, a2] : columns) {
      for (const auto& [r3, a3] : columns) {
        Ind first{r1, {a1}, r2, {a2}};
        Ind second{r2, {a2}, r3, {a3}};
        if (IsTrivial(first) || IsTrivial(second)) continue;
        rules.push_back(GenericRule{
            {Dependency(first), Dependency(second)},
            Dependency(Ind{r1, {a1}, r3, {a3}})});
      }
    }
  }
  return rules;
}

}  // namespace ccfp
