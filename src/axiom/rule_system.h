#ifndef CCFP_AXIOM_RULE_SYSTEM_H_
#define CCFP_AXIOM_RULE_SYSTEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "axiom/oracle.h"
#include "core/dependency.h"
#include "core/schema.h"
#include "util/status.h"

namespace ccfp {

/// A ground inference rule "if T then tau" over a scheme (Section 5 of the
/// paper): a finite antecedent set T and a consequent. A 0-ary rule is an
/// axiom. Rule *schemes* (like IND1–IND3) are represented by instantiating
/// all their ground instances over a finite universe.
struct GenericRule {
  std::vector<Dependency> antecedents;
  Dependency consequent;

  std::size_t arity() const { return antecedents.size(); }
  std::string ToString(const DatabaseScheme& scheme) const;
};

/// A set of ground rules with forward-chaining derivation — the "proof of
/// sigma from Sigma via R" of Section 5.
class RuleSystem {
 public:
  explicit RuleSystem(std::vector<GenericRule> rules)
      : rules_(std::move(rules)) {}

  const std::vector<GenericRule>& rules() const { return rules_; }

  /// max over rules of arity (the k of "k-ary set of rules").
  std::size_t MaxArity() const;

  /// Verifies every rule against the oracle ("a set R of rules is sound if
  /// every member is sound"). Returns the first unsound/unverifiable rule.
  Status CheckSoundness(const ImplicationOracle& oracle,
                        const DatabaseScheme& scheme) const;

  /// Everything derivable from sigma by forward chaining (Sigma itself
  /// included): the |-_R closure.
  std::vector<Dependency> DeriveAll(const std::vector<Dependency>& sigma)
      const;

  /// Sigma |-_R tau?
  bool Derives(const std::vector<Dependency>& sigma,
               const Dependency& tau) const;

 private:
  std::vector<GenericRule> rules_;
};

/// Instantiates the paper's IND1/IND2/IND3 rule schemes as ground rules over
/// all IND expressions of width <= max_width on `scheme`:
///   IND1: 0-ary axioms R[X] <= R[X];
///   IND2: 1-ary, one instance per (IND of width <= max_width, position
///         sequence);
///   IND3: 2-ary, one instance per composable pair of expressions.
/// The result is a 2-ary complete axiomatization for the (width-bounded)
/// INDs over the scheme — exercised against IndImplication in tests.
/// Ground instantiation is exponential in width; meant for small schemes.
std::vector<GenericRule> InstantiateIndRules(const DatabaseScheme& scheme,
                                             std::size_t max_width);

/// Instantiates the KCV *binary* complete axiomatization for unrestricted
/// implication of unary FDs + unary INDs over `scheme`: per-relation unary
/// FD reflexivity/transitivity, unary IND reflexivity/transitivity, and —
/// this is the point — NO mixed rules (the two families do not interact
/// unrestrictedly in this fragment). The same fragment has no k-ary
/// complete axiomatization for *finite* implication (Theorem 6.1), which
/// is why no ground "cycle rule" instantiation appears here.
std::vector<GenericRule> InstantiateUnaryFdIndRules(
    const DatabaseScheme& scheme);

}  // namespace ccfp

#endif  // CCFP_AXIOM_RULE_SYSTEM_H_
