#ifndef CCFP_AXIOM_SENTENCE_H_
#define CCFP_AXIOM_SENTENCE_H_

#include <cstdint>
#include <vector>

#include "core/dependency.h"
#include "core/schema.h"

namespace ccfp {

/// Options for enumerating a finite sentence universe over a scheme — the
/// set "L" of Section 5 of the paper. Theorem 5.1 quantifies over subsets
/// of a sentence set, so the machinery here needs the universe to be finite
/// and explicitly materialized; the widths below bound it.
struct UniverseOptions {
  bool include_fds = true;
  bool include_inds = true;
  bool include_rds = false;
  /// FDs are enumerated with sorted lhs of size <= max_fd_lhs (0 allowed:
  /// "constant column" FDs as used in Section 6, Case 1) and singleton rhs.
  /// This loses no expressive power: general FDs decompose.
  std::size_t max_fd_lhs = 2;
  /// INDs of width <= max_ind_width, all attribute sequences on both sides
  /// (INDs are order-sensitive, so permuted variants are distinct).
  std::size_t max_ind_width = 2;
  /// RDs of width 1 only (general RDs decompose into unary ones —
  /// Section 4 of the paper).
  bool unary_rds_only = true;
};

/// Materializes the sentence universe. Deterministic order.
std::vector<Dependency> EnumerateUniverse(const DatabaseScheme& scheme,
                                          const UniverseOptions& options);

/// The subset of `universe` that is trivial (holds in every database) —
/// the omega of Section 7 / "union of trivial FDs, INDs, and RDs" of
/// Section 6.
std::vector<Dependency> TrivialSubset(const DatabaseScheme& scheme,
                                      const std::vector<Dependency>& universe);

}  // namespace ccfp

#endif  // CCFP_AXIOM_SENTENCE_H_
