#ifndef CCFP_AXIOM_KARY_H_
#define CCFP_AXIOM_KARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "axiom/oracle.h"
#include "core/dependency.h"

namespace ccfp {

/// Machinery for Theorem 5.1: "There is a k-ary complete axiomatization for
/// sentences in L iff whenever Gamma <= L is closed under k-ary implication,
/// then Gamma is closed under implication."
///
/// All functions operate on an explicit finite sentence universe (see
/// axiom/sentence.h) and a pluggable implication oracle.

struct KaryStats {
  std::uint64_t oracle_queries = 0;
  std::uint64_t rounds = 0;
  /// True if the oracle ever answered kUnknown (the result is then a lower
  /// bound of the true closure / the search may have missed an escape).
  bool saw_unknown = false;
};

/// A pair (T, tau) with T |= tau witnessing that a set is not closed.
struct ImplicationEscape {
  std::vector<Dependency> premises;
  Dependency conclusion;

  std::string ToString(const DatabaseScheme& scheme) const;
};

/// Closes `start` under k-ary implication within `universe`: repeatedly adds
/// any tau in universe implied (per oracle) by some subset T of the current
/// set with |T| <= k, until fixpoint.
std::vector<Dependency> KaryClosure(const std::vector<Dependency>& universe,
                                    const std::vector<Dependency>& start,
                                    const ImplicationOracle& oracle,
                                    std::size_t k, KaryStats* stats = nullptr);

/// Searches for a witness that `gamma` is NOT closed under k-ary
/// implication: T <= gamma with |T| <= k and tau in universe - gamma with
/// T |= tau. Returns nullopt if no escape is found (gamma is closed under
/// k-ary implication, modulo kUnknown oracle answers — check stats).
std::optional<ImplicationEscape> FindKaryEscape(
    const std::vector<Dependency>& universe,
    const std::vector<Dependency>& gamma, const ImplicationOracle& oracle,
    std::size_t k, KaryStats* stats = nullptr);

/// Searches for a witness that `gamma` is not closed under (unbounded)
/// implication: tau in universe - gamma with gamma |= tau.
std::optional<ImplicationEscape> FindFullEscape(
    const std::vector<Dependency>& universe,
    const std::vector<Dependency>& gamma, const ImplicationOracle& oracle,
    KaryStats* stats = nullptr);

/// Checks the three Corollary 5.2 conditions for (Sigma, sigma, universe, k):
///   (i)   Sigma |= sigma;
///   (ii)  no single member of Sigma implies sigma;
///   (iii) for every subset Delta of Sigma with |Delta| <= k and every tau
///         in the universe with Delta |= tau, some single member of Delta
///         already implies tau.
/// Returns nullopt if all hold; otherwise a description of the failure.
/// kUnknown oracle answers are treated per condition: for (i) a failure,
/// for (ii)/(iii) reported via stats->saw_unknown and skipped.
std::optional<std::string> CheckCorollary52(
    const std::vector<Dependency>& universe,
    const std::vector<Dependency>& sigma, const Dependency& target,
    const ImplicationOracle& oracle, std::size_t k,
    const DatabaseScheme& scheme, KaryStats* stats = nullptr);

}  // namespace ccfp

#endif  // CCFP_AXIOM_KARY_H_
