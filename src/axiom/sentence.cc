#include "axiom/sentence.h"

#include <functional>

namespace ccfp {

namespace {

// All sorted subsets of {0..arity-1} of size <= max_size.
void ForEachSortedSubset(
    std::size_t arity, std::size_t max_size,
    const std::function<void(const std::vector<AttrId>&)>& fn) {
  std::vector<AttrId> current;
  std::function<void(AttrId)> rec = [&](AttrId start) {
    fn(current);
    if (current.size() >= max_size) return;
    for (AttrId a = start; a < arity; ++a) {
      current.push_back(a);
      rec(a + 1);
      current.pop_back();
    }
  };
  rec(0);
}

// All sequences of `width` distinct attributes of {0..arity-1}.
void ForEachSequence(
    std::size_t arity, std::size_t width,
    const std::function<void(const std::vector<AttrId>&)>& fn) {
  std::vector<AttrId> current;
  std::vector<bool> used(arity, false);
  std::function<void()> rec = [&]() {
    if (current.size() == width) {
      fn(current);
      return;
    }
    for (AttrId a = 0; a < arity; ++a) {
      if (used[a]) continue;
      used[a] = true;
      current.push_back(a);
      rec();
      current.pop_back();
      used[a] = false;
    }
  };
  rec();
}

}  // namespace

std::vector<Dependency> EnumerateUniverse(const DatabaseScheme& scheme,
                                          const UniverseOptions& options) {
  std::vector<Dependency> universe;

  if (options.include_fds) {
    for (RelId rel = 0; rel < scheme.size(); ++rel) {
      std::size_t arity = scheme.relation(rel).arity();
      ForEachSortedSubset(arity, options.max_fd_lhs,
                          [&](const std::vector<AttrId>& lhs) {
                            for (AttrId rhs = 0; rhs < arity; ++rhs) {
                              universe.push_back(
                                  Dependency(Fd{rel, lhs, {rhs}}));
                            }
                          });
    }
  }

  if (options.include_inds) {
    for (std::size_t width = 1; width <= options.max_ind_width; ++width) {
      for (RelId r1 = 0; r1 < scheme.size(); ++r1) {
        if (scheme.relation(r1).arity() < width) continue;
        for (RelId r2 = 0; r2 < scheme.size(); ++r2) {
          if (scheme.relation(r2).arity() < width) continue;
          ForEachSequence(
              scheme.relation(r1).arity(), width,
              [&](const std::vector<AttrId>& lhs) {
                ForEachSequence(scheme.relation(r2).arity(), width,
                                [&](const std::vector<AttrId>& rhs) {
                                  universe.push_back(
                                      Dependency(Ind{r1, lhs, r2, rhs}));
                                });
              });
        }
      }
    }
  }

  if (options.include_rds) {
    for (RelId rel = 0; rel < scheme.size(); ++rel) {
      std::size_t arity = scheme.relation(rel).arity();
      for (AttrId a = 0; a < arity; ++a) {
        for (AttrId b = 0; b < arity; ++b) {
          universe.push_back(Dependency(Rd{rel, {a}, {b}}));
        }
      }
    }
  }

  return universe;
}

std::vector<Dependency> TrivialSubset(
    const DatabaseScheme& scheme, const std::vector<Dependency>& universe) {
  std::vector<Dependency> out;
  for (const Dependency& dep : universe) {
    if (IsTrivial(scheme, dep)) out.push_back(dep);
  }
  return out;
}

}  // namespace ccfp
