#include "axiom/oracle.h"

#include "core/satisfies.h"
#include "fd/closure.h"
#include "ind/implication.h"
#include "interact/unary_finite.h"
#include "util/strings.h"

namespace ccfp {

ImplicationVerdict FdOracle::Implies(const std::vector<Dependency>& premises,
                                     const Dependency& conclusion) const {
  if (!conclusion.is_fd()) return ImplicationVerdict::kUnknown;
  std::vector<Fd> fds;
  for (const Dependency& p : premises) {
    if (!p.is_fd()) return ImplicationVerdict::kUnknown;
    fds.push_back(p.fd());
  }
  return FdImplies(*scheme_, fds, conclusion.fd())
             ? ImplicationVerdict::kImplied
             : ImplicationVerdict::kNotImplied;
}

ImplicationVerdict IndOracle::Implies(const std::vector<Dependency>& premises,
                                      const Dependency& conclusion) const {
  if (!conclusion.is_ind()) return ImplicationVerdict::kUnknown;
  std::vector<Ind> inds;
  for (const Dependency& p : premises) {
    if (!p.is_ind()) return ImplicationVerdict::kUnknown;
    inds.push_back(p.ind());
  }
  IndImplication engine(scheme_, std::move(inds));
  Result<IndDecision> decision = engine.Decide(conclusion.ind());
  if (!decision.ok()) return ImplicationVerdict::kUnknown;
  return decision->implied ? ImplicationVerdict::kImplied
                           : ImplicationVerdict::kNotImplied;
}

namespace {

// Splits premises into unary FDs and unary INDs, ignoring trivial
// dependencies of any kind. Returns false if an unsupported (non-trivial,
// non-unary-FD/IND) premise is present.
bool SplitUnaryPremises(const DatabaseScheme& scheme,
                        const std::vector<Dependency>& premises,
                        std::vector<Fd>& fds, std::vector<Ind>& inds) {
  for (const Dependency& p : premises) {
    if (IsTrivial(scheme, p)) continue;
    if (p.is_fd() && p.fd().lhs.size() == 1 && p.fd().rhs.size() == 1) {
      fds.push_back(p.fd());
    } else if (p.is_ind() && p.ind().width() == 1) {
      inds.push_back(p.ind());
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

ImplicationVerdict UnaryFiniteOracle::Implies(
    const std::vector<Dependency>& premises,
    const Dependency& conclusion) const {
  if (IsTrivial(*scheme_, conclusion)) return ImplicationVerdict::kImplied;
  std::vector<Fd> fds;
  std::vector<Ind> inds;
  if (!SplitUnaryPremises(*scheme_, premises, fds, inds)) {
    return ImplicationVerdict::kUnknown;
  }
  bool unary_fd_conclusion = conclusion.is_fd() &&
                             conclusion.fd().lhs.size() == 1 &&
                             conclusion.fd().rhs.size() == 1;
  bool unary_ind_conclusion =
      conclusion.is_ind() && conclusion.ind().width() == 1;
  if (!unary_fd_conclusion && !unary_ind_conclusion) {
    return ImplicationVerdict::kUnknown;
  }
  UnaryFiniteImplication engine(scheme_, fds, inds);
  return engine.Implies(conclusion) ? ImplicationVerdict::kImplied
                                    : ImplicationVerdict::kNotImplied;
}

ImplicationVerdict ChaseOracle::Implies(
    const std::vector<Dependency>& premises,
    const Dependency& conclusion) const {
  if (IsTrivial(*scheme_, conclusion)) return ImplicationVerdict::kImplied;
  std::vector<Fd> fds;
  std::vector<Ind> inds;
  for (const Dependency& p : premises) {
    if (IsTrivial(*scheme_, p)) continue;
    if (p.is_fd()) {
      fds.push_back(p.fd());
    } else if (p.is_ind()) {
      inds.push_back(p.ind());
    } else {
      return ImplicationVerdict::kUnknown;  // RD/EMVD premises unsupported
    }
  }
  Result<bool> implied =
      ChaseImplies(scheme_, fds, inds, conclusion, options_);
  if (!implied.ok()) return ImplicationVerdict::kUnknown;
  return *implied ? ImplicationVerdict::kImplied
                  : ImplicationVerdict::kNotImplied;
}

ImplicationVerdict CounterexampleOracle::Implies(
    const std::vector<Dependency>& premises,
    const Dependency& conclusion) const {
  for (const InternedWorkspace& ws : witnesses_) {
    if (ws.Satisfies(conclusion)) continue;
    if (ws.SatisfiesAll(premises)) return ImplicationVerdict::kNotImplied;
  }
  return ImplicationVerdict::kUnknown;
}

ImplicationVerdict ChainOracle::Implies(
    const std::vector<Dependency>& premises,
    const Dependency& conclusion) const {
  for (const ImplicationOracle* child : children_) {
    ImplicationVerdict verdict = child->Implies(premises, conclusion);
    if (verdict != ImplicationVerdict::kUnknown) return verdict;
  }
  return ImplicationVerdict::kUnknown;
}

std::string ChainOracle::name() const {
  return StrCat("chain(",
                JoinMapped(children_, " -> ",
                           [](const ImplicationOracle* o) {
                             return o->name();
                           }),
                ")");
}

}  // namespace ccfp
