#include "axiom/kary.h"

#include <functional>
#include <unordered_set>

#include "util/strings.h"

namespace ccfp {

namespace {

using DepSet = std::unordered_set<Dependency, DependencyHash>;

// Enumerates all subsets of `pool` of size <= k, invoking fn(subset).
// fn returning true stops the enumeration (early exit).
bool ForEachSubsetUpToK(
    const std::vector<Dependency>& pool, std::size_t k,
    const std::function<bool(const std::vector<Dependency>&)>& fn) {
  std::vector<Dependency> current;
  std::function<bool(std::size_t)> rec = [&](std::size_t start) -> bool {
    if (fn(current)) return true;
    if (current.size() >= k) return false;
    for (std::size_t i = start; i < pool.size(); ++i) {
      current.push_back(pool[i]);
      if (rec(i + 1)) return true;
      current.pop_back();
    }
    return false;
  };
  return rec(0);
}

}  // namespace

std::string ImplicationEscape::ToString(const DatabaseScheme& scheme) const {
  return StrCat("{",
                JoinMapped(premises, "; ",
                           [&](const Dependency& d) {
                             return d.ToString(scheme);
                           }),
                "} |= ", conclusion.ToString(scheme));
}

std::vector<Dependency> KaryClosure(const std::vector<Dependency>& universe,
                                    const std::vector<Dependency>& start,
                                    const ImplicationOracle& oracle,
                                    std::size_t k, KaryStats* stats) {
  KaryStats local;
  KaryStats& s = stats != nullptr ? *stats : local;

  std::vector<Dependency> closure = start;
  DepSet in_closure(start.begin(), start.end());

  bool changed = true;
  while (changed) {
    changed = false;
    ++s.rounds;
    // Candidates not yet in the closure.
    std::vector<Dependency> candidates;
    for (const Dependency& tau : universe) {
      if (in_closure.count(tau) == 0) candidates.push_back(tau);
    }
    if (candidates.empty()) break;
    ForEachSubsetUpToK(closure, k, [&](const std::vector<Dependency>& t) {
      for (const Dependency& tau : candidates) {
        if (in_closure.count(tau) > 0) continue;
        ++s.oracle_queries;
        ImplicationVerdict verdict = oracle.Implies(t, tau);
        if (verdict == ImplicationVerdict::kUnknown) s.saw_unknown = true;
        if (verdict == ImplicationVerdict::kImplied) {
          closure.push_back(tau);
          in_closure.insert(tau);
          changed = true;
        }
      }
      return false;  // never early-exit: we want the full fixpoint
    });
  }
  return closure;
}

std::optional<ImplicationEscape> FindKaryEscape(
    const std::vector<Dependency>& universe,
    const std::vector<Dependency>& gamma, const ImplicationOracle& oracle,
    std::size_t k, KaryStats* stats) {
  KaryStats local;
  KaryStats& s = stats != nullptr ? *stats : local;

  DepSet in_gamma(gamma.begin(), gamma.end());
  std::vector<Dependency> candidates;
  for (const Dependency& tau : universe) {
    if (in_gamma.count(tau) == 0) candidates.push_back(tau);
  }

  std::optional<ImplicationEscape> escape;
  ForEachSubsetUpToK(gamma, k, [&](const std::vector<Dependency>& t) {
    for (const Dependency& tau : candidates) {
      ++s.oracle_queries;
      ImplicationVerdict verdict = oracle.Implies(t, tau);
      if (verdict == ImplicationVerdict::kUnknown) s.saw_unknown = true;
      if (verdict == ImplicationVerdict::kImplied) {
        escape = ImplicationEscape{t, tau};
        return true;
      }
    }
    return false;
  });
  return escape;
}

std::optional<ImplicationEscape> FindFullEscape(
    const std::vector<Dependency>& universe,
    const std::vector<Dependency>& gamma, const ImplicationOracle& oracle,
    KaryStats* stats) {
  KaryStats local;
  KaryStats& s = stats != nullptr ? *stats : local;

  DepSet in_gamma(gamma.begin(), gamma.end());
  for (const Dependency& tau : universe) {
    if (in_gamma.count(tau) > 0) continue;
    ++s.oracle_queries;
    ImplicationVerdict verdict = oracle.Implies(gamma, tau);
    if (verdict == ImplicationVerdict::kUnknown) s.saw_unknown = true;
    if (verdict == ImplicationVerdict::kImplied) {
      return ImplicationEscape{gamma, tau};
    }
  }
  return std::nullopt;
}

std::optional<std::string> CheckCorollary52(
    const std::vector<Dependency>& universe,
    const std::vector<Dependency>& sigma, const Dependency& target,
    const ImplicationOracle& oracle, std::size_t k,
    const DatabaseScheme& scheme, KaryStats* stats) {
  KaryStats local;
  KaryStats& s = stats != nullptr ? *stats : local;

  // (i) Sigma |= target.
  ++s.oracle_queries;
  if (oracle.Implies(sigma, target) != ImplicationVerdict::kImplied) {
    return StrCat("(i) fails: Sigma does not (provably) imply ",
                  target.ToString(scheme));
  }

  // (ii) no single member implies target.
  for (const Dependency& tau : sigma) {
    ++s.oracle_queries;
    ImplicationVerdict verdict = oracle.Implies({tau}, target);
    if (verdict == ImplicationVerdict::kUnknown) {
      s.saw_unknown = true;
      continue;
    }
    if (verdict == ImplicationVerdict::kImplied) {
      return StrCat("(ii) fails: single member ", tau.ToString(scheme),
                    " implies the target");
    }
  }

  // (iii) every <=k-subset Delta with Delta |= tau has a single member
  // already implying tau.
  std::optional<std::string> failure;
  ForEachSubsetUpToK(sigma, k, [&](const std::vector<Dependency>& delta) {
    for (const Dependency& tau : universe) {
      ++s.oracle_queries;
      ImplicationVerdict whole = oracle.Implies(delta, tau);
      if (whole == ImplicationVerdict::kUnknown) {
        s.saw_unknown = true;
        continue;
      }
      if (whole != ImplicationVerdict::kImplied) continue;
      bool single_suffices = false;
      for (const Dependency& d : delta) {
        ++s.oracle_queries;
        ImplicationVerdict one = oracle.Implies({d}, tau);
        if (one == ImplicationVerdict::kUnknown) s.saw_unknown = true;
        if (one == ImplicationVerdict::kImplied) {
          single_suffices = true;
          break;
        }
      }
      if (!single_suffices) {
        failure = StrCat("(iii) fails for tau = ", tau.ToString(scheme),
                         " implied by a ", delta.size(),
                         "-subset with no single sufficient member");
        return true;
      }
    }
    return false;
  });
  return failure;
}

}  // namespace ccfp
