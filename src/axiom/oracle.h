#ifndef CCFP_AXIOM_ORACLE_H_
#define CCFP_AXIOM_ORACLE_H_

#include <memory>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "core/database.h"
#include "core/dependency.h"
#include "core/schema.h"
#include "core/workspace.h"
#include "interact/finite_vs_unrestricted.h"

namespace ccfp {

/// Answers "premises |= conclusion?" for the semantics it implements
/// (unrestricted or finite — each concrete oracle documents which). The
/// Theorem 5.1 machinery (k-ary closure) is parameterized by an oracle so
/// the same fixpoint code serves FDs, INDs, finite and unrestricted
/// implication, and sampled approximations.
class ImplicationOracle {
 public:
  virtual ~ImplicationOracle() = default;

  virtual ImplicationVerdict Implies(
      const std::vector<Dependency>& premises,
      const Dependency& conclusion) const = 0;

  virtual std::string name() const = 0;
};

/// Exact oracle for pure-FD instances (unrestricted = finite for FDs).
/// kUnknown on anything containing a non-FD.
class FdOracle : public ImplicationOracle {
 public:
  explicit FdOracle(SchemePtr scheme) : scheme_(std::move(scheme)) {}
  ImplicationVerdict Implies(const std::vector<Dependency>& premises,
                             const Dependency& conclusion) const override;
  std::string name() const override { return "fd-closure"; }

 private:
  SchemePtr scheme_;
};

/// Exact oracle for pure-IND instances (unrestricted = finite for INDs,
/// Theorem 3.1). kUnknown on anything containing a non-IND, or on budget
/// exhaustion.
class IndOracle : public ImplicationOracle {
 public:
  explicit IndOracle(SchemePtr scheme) : scheme_(std::move(scheme)) {}
  ImplicationVerdict Implies(const std::vector<Dependency>& premises,
                             const Dependency& conclusion) const override;
  std::string name() const override { return "ind-bfs"; }

 private:
  SchemePtr scheme_;
};

/// Exact *finite*-implication oracle for unary FDs + unary INDs (the KCV
/// counting closure). Trivial RD premises are ignored; any other RD/EMVD or
/// non-unary dependency yields kUnknown — except that a trivial conclusion
/// of any kind is always kImplied.
class UnaryFiniteOracle : public ImplicationOracle {
 public:
  explicit UnaryFiniteOracle(SchemePtr scheme) : scheme_(std::move(scheme)) {}
  ImplicationVerdict Implies(const std::vector<Dependency>& premises,
                             const Dependency& conclusion) const override;
  std::string name() const override { return "unary-finite-counting"; }

 private:
  SchemePtr scheme_;
};

/// Unrestricted-implication oracle via the FD+IND chase (semi-decision):
/// kUnknown on budget exhaustion or unsupported premise kinds (trivial RD
/// premises are ignored).
class ChaseOracle : public ImplicationOracle {
 public:
  ChaseOracle(SchemePtr scheme, ChaseOptions options = {})
      : scheme_(std::move(scheme)), options_(options) {}
  ImplicationVerdict Implies(const std::vector<Dependency>& premises,
                             const Dependency& conclusion) const override;
  std::string name() const override { return "fd+ind-chase"; }

 private:
  SchemePtr scheme_;
  ChaseOptions options_;
};

/// Refutation-only oracle backed by witness databases: answers kNotImplied
/// when some witness satisfies every premise but violates the conclusion
/// (a counterexample database), else kUnknown. This is how the paper's own
/// Figures 6.1 and 7.1–7.5 are used — each figure is a counterexample
/// certifying a non-implication. Each witness lives in a persistent
/// InternedWorkspace (core/workspace.h): interned once when added, after
/// which every query is integer probing against cached projection
/// partitions, and new witnesses can be appended at any time without
/// disturbing the compiled state of the existing ones.
class CounterexampleOracle : public ImplicationOracle {
 public:
  explicit CounterexampleOracle(const std::vector<Database>& witnesses) {
    witnesses_.reserve(witnesses.size());
    for (const Database& db : witnesses) AddWitness(db);
  }

  /// Registers another counterexample database (e.g. one just found by the
  /// bounded searcher), interning it once into its own workspace.
  void AddWitness(const Database& db) {
    witnesses_.emplace_back(db.scheme_ptr());
    witnesses_.back().AppendDatabase(db);
  }

  std::size_t witness_count() const { return witnesses_.size(); }

  ImplicationVerdict Implies(const std::vector<Dependency>& premises,
                             const Dependency& conclusion) const override;
  std::string name() const override { return "counterexample-databases"; }

 private:
  std::vector<InternedWorkspace> witnesses_;
};

/// Tries each child in order; first non-kUnknown verdict wins.
class ChainOracle : public ImplicationOracle {
 public:
  explicit ChainOracle(std::vector<const ImplicationOracle*> children)
      : children_(std::move(children)) {}
  ImplicationVerdict Implies(const std::vector<Dependency>& premises,
                             const Dependency& conclusion) const override;
  std::string name() const override;

 private:
  std::vector<const ImplicationOracle*> children_;
};

}  // namespace ccfp

#endif  // CCFP_AXIOM_ORACLE_H_
