#include "search/bounded.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <set>

#include "core/satisfies.h"
#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

namespace {

/// ------------------------------------------------------------------------
/// Legacy engine: materialize every candidate database as heap Value
/// tuples and run the model checker per candidate. Kept as the
/// differential reference for the id-space engine and as the fallback when
/// the id-space key tables would not fit.
/// ------------------------------------------------------------------------

// All tuples over `arity` positions with entries in {0..domain-1}, in
// lexicographic order.
std::vector<Tuple> TupleSpace(std::size_t arity, std::size_t domain) {
  std::vector<Tuple> space;
  std::uint64_t total = 1;
  for (std::size_t i = 0; i < arity; ++i) total *= domain;
  space.reserve(total);
  for (std::uint64_t code = 0; code < total; ++code) {
    Tuple t(arity);
    std::uint64_t rest = code;
    for (std::size_t i = 0; i < arity; ++i) {
      t[i] = Value::Int(static_cast<std::int64_t>(rest % domain));
      rest /= domain;
    }
    space.push_back(std::move(t));
  }
  return space;
}

// All subsets of {0..n-1} of size <= k, as index lists.
std::vector<std::vector<std::size_t>> Combinations(std::size_t n,
                                                   std::size_t k) {
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> current;
  std::function<void(std::size_t)> rec = [&](std::size_t start) {
    out.push_back(current);
    if (current.size() >= k) return;
    for (std::size_t i = start; i < n; ++i) {
      current.push_back(i);
      rec(i + 1);
      current.pop_back();
    }
  };
  rec(0);
  return out;
}

std::uint64_t SatMul(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > ~std::uint64_t{0} / a) return ~std::uint64_t{0};
  return a * b;
}

std::uint64_t SatAdd(std::uint64_t a, std::uint64_t b) {
  return a > ~std::uint64_t{0} - b ? ~std::uint64_t{0} : a + b;
}

/// Logical bytes LegacySearch materializes up front: the per-relation
/// Value tuple spaces plus every subset index list (Combinations output).
/// Saturating arithmetic — a saturated estimate certainly busts any real
/// ceiling.
std::uint64_t LegacyMaterializationBytes(const DatabaseScheme& scheme,
                                         const BoundedSearchOptions& options) {
  std::uint64_t bytes = 0;
  for (RelId rel = 0; rel < scheme.size(); ++rel) {
    std::size_t arity = scheme.relation(rel).arity();
    std::uint64_t space = 1;
    for (std::size_t a = 0; a < arity; ++a) {
      space = SatMul(space, options.domain_size);
    }
    bytes = SatAdd(bytes, SatMul(space, SatMul(arity, sizeof(Value))));
    // Subsets of size <= k: sum_i C(space, i) lists holding sum_i i *
    // C(space, i) indexes.
    std::uint64_t binom = 1, subsets = 1, indexes = 0;
    for (std::uint64_t i = 1;
         i <= options.max_tuples_per_relation && i <= space; ++i) {
      binom = SatMul(binom, space - i + 1) / i;
      subsets = SatAdd(subsets, binom);
      indexes = SatAdd(indexes, SatMul(binom, i));
    }
    bytes = SatAdd(bytes, SatMul(subsets, sizeof(std::vector<std::size_t>)));
    bytes = SatAdd(bytes, SatMul(indexes, sizeof(std::size_t)));
  }
  return bytes;
}

Result<BoundedSearchResult> LegacySearch(
    const SchemePtr& scheme, const std::vector<Dependency>& premises,
    const Dependency& conclusion, const BoundedSearchOptions& options) {
  BoundedSearchResult result;
  if (LegacyMaterializationBytes(*scheme, options) > options.max_bytes) {
    // Over the byte ceiling before the first candidate: no verdict, and
    // refusing to allocate is the whole point.
    result.exhausted = false;
    return result;
  }
  SatisfiesOptions check;
  check.engine = SatisfiesEngine::kLegacy;

  // Per-relation candidate tuple sets.
  std::vector<std::vector<Tuple>> spaces;
  std::vector<std::vector<std::vector<std::size_t>>> choices;
  for (RelId rel = 0; rel < scheme->size(); ++rel) {
    spaces.push_back(TupleSpace(scheme->relation(rel).arity(),
                                options.domain_size));
    choices.push_back(Combinations(spaces.back().size(),
                                   options.max_tuples_per_relation));
  }

  // Depth-first product over per-relation choices.
  Database db(scheme);
  bool budget_hit = false;
  std::function<bool(RelId)> rec = [&](RelId rel) -> bool {
    if (rel == scheme->size()) {
      if (++result.candidates_tested > options.max_candidates ||
          (options.cancel != nullptr && options.cancel->exhausted())) {
        budget_hit = true;
        return true;  // stop
      }
      if (Satisfies(db, conclusion, check)) return false;
      for (const Dependency& p : premises) {
        if (!Satisfies(db, p, check)) return false;
      }
      result.counterexample = db;  // copy: db is reused by the recursion
      return true;
    }
    for (const std::vector<std::size_t>& subset : choices[rel]) {
      Relation fresh(scheme->relation(rel).arity());
      for (std::size_t idx : subset) fresh.Insert(spaces[rel][idx]);
      db.relation(rel) = std::move(fresh);
      if (rec(rel + 1)) return true;
    }
    return false;
  };
  rec(0);
  result.exhausted = !budget_hit;
  return result;
}

/// ------------------------------------------------------------------------
/// Id-space engine (see bounded.h for the strategy overview). Tuples are
/// integer codes; each dependency is compiled into a state machine with
/// precomputed per-code projection keys and O(1) incremental counters.
/// ------------------------------------------------------------------------

/// Caps the total size of precomputed key tables / counter arrays; beyond
/// this the searcher falls back to the legacy engine (which is equally
/// doomed on such spaces, but fails the same way it always did).
constexpr std::uint64_t kMaxTableEntries = 1u << 24;
constexpr std::uint64_t kMaxTupleSpace = 1u << 20;

/// Incrementally maintained satisfaction state of one dependency. Include
/// and Exclude must be called with every code change of every relation the
/// dependency involves; Exclude must exactly reverse the matching Include.
class DepState {
 public:
  virtual ~DepState() = default;
  virtual void Include(RelId rel, std::uint32_t code) = 0;
  virtual void Exclude(RelId rel, std::uint32_t code) = 0;
  virtual bool Satisfied() const = 0;
  /// True when a violation can never be cured by inserting more tuples
  /// (FDs and RDs) — enables mid-relation subtree pruning for premises.
  virtual bool MonotoneViolation() const { return false; }
};

/// Precomputes, for every code of relation `rel`'s tuple space, the packed
/// base-`domain` key of the projection onto `cols`.
std::vector<std::uint32_t> KeyTable(std::uint64_t space_size,
                                    std::size_t domain,
                                    const std::vector<AttrId>& cols,
                                    const std::vector<std::uint64_t>& pow) {
  std::vector<std::uint32_t> keys(space_size);
  for (std::uint64_t code = 0; code < space_size; ++code) {
    std::uint64_t key = 0;
    std::uint64_t mult = 1;
    for (AttrId c : cols) {
      key += ((code / pow[c]) % domain) * mult;
      mult *= domain;
    }
    keys[code] = static_cast<std::uint32_t>(key);
  }
  return keys;
}

std::uint64_t KeySpace(std::size_t domain, std::size_t width) {
  std::uint64_t s = 1;
  for (std::size_t i = 0; i < width; ++i) s *= domain;
  return s;
}

class FdState : public DepState {
 public:
  FdState(const Fd& fd, std::size_t domain,
          const std::vector<std::uint32_t>& lhs_key,
          const std::vector<std::uint32_t>& pair_key)
      : lhs_key_(&lhs_key), pair_key_(&pair_key) {
    distinct_rhs_.assign(KeySpace(domain, fd.lhs.size()), 0);
    pair_cnt_.assign(KeySpace(domain, fd.lhs.size() + fd.rhs.size()), 0);
  }

  void Include(RelId, std::uint32_t code) override {
    if (pair_cnt_[(*pair_key_)[code]]++ == 0) {
      if (++distinct_rhs_[(*lhs_key_)[code]] == 2) ++violated_;
    }
  }
  void Exclude(RelId, std::uint32_t code) override {
    if (--pair_cnt_[(*pair_key_)[code]] == 0) {
      if (--distinct_rhs_[(*lhs_key_)[code]] == 1) --violated_;
    }
  }
  bool Satisfied() const override { return violated_ == 0; }
  bool MonotoneViolation() const override { return true; }

 private:
  const std::vector<std::uint32_t>* lhs_key_;
  const std::vector<std::uint32_t>* pair_key_;
  std::vector<std::uint32_t> distinct_rhs_, pair_cnt_;
  std::uint64_t violated_ = 0;
};

class RdState : public DepState {
 public:
  RdState(const Rd& rd, std::uint64_t space, std::size_t domain,
          const std::vector<std::uint64_t>& pow) {
    bad_.resize(space, 0);
    for (std::uint64_t code = 0; code < space; ++code) {
      for (std::size_t i = 0; i < rd.lhs.size(); ++i) {
        if ((code / pow[rd.lhs[i]]) % domain !=
            (code / pow[rd.rhs[i]]) % domain) {
          bad_[code] = 1;
          break;
        }
      }
    }
  }

  void Include(RelId, std::uint32_t code) override {
    violated_ += bad_[code];
  }
  void Exclude(RelId, std::uint32_t code) override {
    violated_ -= bad_[code];
  }
  bool Satisfied() const override { return violated_ == 0; }
  bool MonotoneViolation() const override { return true; }

 private:
  std::vector<std::uint8_t> bad_;
  std::uint64_t violated_ = 0;
};

class IndState : public DepState {
 public:
  IndState(const Ind& ind, std::size_t domain,
           const std::vector<std::uint32_t>& lhs_key,
           const std::vector<std::uint32_t>& rhs_key)
      : lhs_rel_(ind.lhs_rel),
        rhs_rel_(ind.rhs_rel),
        lhs_key_(&lhs_key),
        rhs_key_(&rhs_key) {
    std::uint64_t keys = KeySpace(domain, ind.width());
    lhs_cnt_.assign(keys, 0);
    rhs_cnt_.assign(keys, 0);
  }

  void Include(RelId rel, std::uint32_t code) override {
    if (rel == rhs_rel_) {
      std::uint32_t k = (*rhs_key_)[code];
      if (rhs_cnt_[k]++ == 0 && lhs_cnt_[k] > 0) --missing_;
    }
    if (rel == lhs_rel_) {
      std::uint32_t k = (*lhs_key_)[code];
      if (lhs_cnt_[k]++ == 0 && rhs_cnt_[k] == 0) ++missing_;
    }
  }
  void Exclude(RelId rel, std::uint32_t code) override {
    // Exact reverse order of Include.
    if (rel == lhs_rel_) {
      std::uint32_t k = (*lhs_key_)[code];
      if (--lhs_cnt_[k] == 0 && rhs_cnt_[k] == 0) --missing_;
    }
    if (rel == rhs_rel_) {
      std::uint32_t k = (*rhs_key_)[code];
      if (--rhs_cnt_[k] == 0 && lhs_cnt_[k] > 0) ++missing_;
    }
  }
  bool Satisfied() const override { return missing_ == 0; }

 private:
  RelId lhs_rel_, rhs_rel_;
  const std::vector<std::uint32_t>* lhs_key_;
  const std::vector<std::uint32_t>* rhs_key_;
  std::vector<std::uint32_t> lhs_cnt_, rhs_cnt_;
  std::uint64_t missing_ = 0;
};

class EmvdState : public DepState {
 public:
  EmvdState(const std::vector<AttrId>& x, const std::vector<AttrId>& xy,
            const std::vector<AttrId>& xz, std::size_t pair_width,
            std::size_t domain, const std::vector<std::uint32_t>& x_key,
            const std::vector<std::uint32_t>& xy_key,
            const std::vector<std::uint32_t>& xz_key,
            const std::vector<std::uint32_t>& pair_key)
      : x_key_(&x_key),
        xy_key_(&xy_key),
        xz_key_(&xz_key),
        pair_key_(&pair_key) {
    ny_.assign(KeySpace(domain, x.size()), 0);
    nz_.assign(ny_.size(), 0);
    np_.assign(ny_.size(), 0);
    cnt_xy_.assign(KeySpace(domain, xy.size()), 0);
    cnt_xz_.assign(KeySpace(domain, xz.size()), 0);
    cnt_pair_.assign(KeySpace(domain, pair_width), 0);
  }

  void Include(RelId, std::uint32_t code) override {
    std::uint32_t g = (*x_key_)[code];
    bool bad_before = Bad(g);
    if (cnt_xy_[(*xy_key_)[code]]++ == 0) ++ny_[g];
    if (cnt_xz_[(*xz_key_)[code]]++ == 0) ++nz_[g];
    if (cnt_pair_[(*pair_key_)[code]]++ == 0) ++np_[g];
    violated_ += static_cast<int>(Bad(g)) - static_cast<int>(bad_before);
  }
  void Exclude(RelId, std::uint32_t code) override {
    std::uint32_t g = (*x_key_)[code];
    bool bad_before = Bad(g);
    if (--cnt_xy_[(*xy_key_)[code]] == 0) --ny_[g];
    if (--cnt_xz_[(*xz_key_)[code]] == 0) --nz_[g];
    if (--cnt_pair_[(*pair_key_)[code]] == 0) --np_[g];
    violated_ += static_cast<int>(Bad(g)) - static_cast<int>(bad_before);
  }
  bool Satisfied() const override { return violated_ == 0; }

 private:
  /// An X-group is bad iff some (XY, XZ) combination lacks a witness:
  /// present pairs < distinct-XY * distinct-XZ.
  bool Bad(std::uint32_t g) const {
    return static_cast<std::uint64_t>(ny_[g]) * nz_[g] != np_[g];
  }

  const std::vector<std::uint32_t>* x_key_;
  const std::vector<std::uint32_t>* xy_key_;
  const std::vector<std::uint32_t>* xz_key_;
  const std::vector<std::uint32_t>* pair_key_;
  std::vector<std::uint32_t> ny_, nz_, cnt_xy_, cnt_xz_, cnt_pair_;
  std::vector<std::uint64_t> np_;
  std::int64_t violated_ = 0;
};

std::vector<RelId> DepRels(const Dependency& dep) {
  if (dep.is_ind()) {
    if (dep.ind().lhs_rel == dep.ind().rhs_rel) return {dep.ind().lhs_rel};
    return {dep.ind().lhs_rel, dep.ind().rhs_rel};
  }
  if (dep.is_fd()) return {dep.fd().rel};
  if (dep.is_rd()) return {dep.rd().rel};
  if (dep.is_emvd()) return {dep.emvd().rel};
  return {dep.mvd().rel};
}

/// State shared by every task of one kParallel search: the winning task
/// index (lowest wins — the deterministic reduction) and the shared
/// candidate meter. A task abandons its subtree only when a *strictly
/// lower* index has found a counterexample, so the minimum-index winner's
/// DFS-first witness is exactly the sequential engine's global first.
struct ParallelSearchControl {
  static constexpr std::uint32_t kNoTask = UINT32_MAX;
  std::atomic<std::uint32_t> best_task{kNoTask};
  SharedBudgetMeter* meter = nullptr;
};

class IdSpaceSearcher {
 public:
  IdSpaceSearcher(SchemePtr scheme, const std::vector<Dependency>& premises,
                  const Dependency& conclusion,
                  const BoundedSearchOptions& options)
      : scheme_(std::move(scheme)), options_(options) {
    std::size_t n = scheme_->size();
    // One shared feasibility predicate with the pre-run estimate API
    // (EstimateBoundedSearch): the tuple spaces and key tables must fit
    // the hard caps and the byte ceiling. Infeasible here falls through
    // to the legacy engine, which runs its own estimate against the same
    // ceiling and declines too if it cannot fit.
    BoundedSearchEstimate estimate =
        EstimateBoundedSearch(*scheme_, premises, conclusion, options_);
    if (!estimate.id_space_feasible) {
      feasible_ = false;
      return;
    }
    space_.resize(n);
    pow_.resize(n);
    for (RelId rel = 0; rel < n; ++rel) {
      // Cannot wrap: the estimate capped every space at kMaxTupleSpace.
      std::size_t arity = scheme_->relation(rel).arity();
      pow_[rel].resize(arity);
      std::uint64_t p = 1;
      for (std::size_t a = 0; a < arity; ++a) {
        pow_[rel][a] = p;
        p *= options_.domain_size;
      }
      space_[rel] = p;
    }

    deps_by_rel_.resize(n);
    monotone_by_rel_.resize(n);
    final_premises_by_rel_.resize(n);
    for (const Dependency& p : premises) AddDep(p, /*is_premise=*/true);
    AddDep(conclusion, /*is_premise=*/false);
    chosen_.resize(n);
  }

  bool feasible() const { return feasible_; }

  BoundedSearchResult Run() {
    Enumerate(0, 0, 0);
    result_.exhausted = !budget_hit_;
    return std::move(result_);
  }

  /// --- kParallel task API (driver in ParallelSearch below) ---------------

  void SetParallelControl(ParallelSearchControl* control,
                          std::uint32_t task_index) {
    control_ = control;
    task_index_ = task_index;
  }

  /// Task 0: the subtree where relation 0 stays empty — the sequential
  /// engine's first boundary and everything under it.
  void RunRootTask() { Boundary(0); }

  /// Task `code + 1`: the subtree where relation 0's lowest included code
  /// is `code`. Mirrors one iteration of the sequential top-level loop.
  void RunBranchTask(std::uint32_t code) {
    IncludeCode(0, code);
    bool dead = false;
    for (DepState* d : monotone_by_rel_[0]) {
      if (!d->Satisfied()) {
        dead = true;
        break;
      }
    }
    if (!dead) Enumerate(0, code + 1, 1);
    ExcludeCode(0, code);
  }

  std::uint64_t root_space() const { return space_.empty() ? 0 : space_[0]; }
  std::uint64_t candidates_tested() const { return result_.candidates_tested; }
  bool found() const { return result_.counterexample.has_value(); }
  std::optional<Database> TakeCounterexample() {
    return std::move(result_.counterexample);
  }

 private:
  /// The key table for (rel, cols): served from the caller's workspace
  /// when one was passed (shared across dependencies *and* searches),
  /// otherwise compiled into this search's private arena.
  const std::vector<std::uint32_t>& Keys(RelId rel,
                                         const std::vector<AttrId>& cols) {
    if (options_.workspace != nullptr) {
      return options_.workspace->KeyTable(rel, options_.domain_size, cols,
                                          space_[rel], pow_[rel]);
    }
    owned_tables_.push_back(
        KeyTable(space_[rel], options_.domain_size, cols, pow_[rel]));
    return owned_tables_.back();
  }

  std::unique_ptr<DepState> MakeEmvdState(RelId rel,
                                          const std::vector<AttrId>& x,
                                          const std::vector<AttrId>& y,
                                          const std::vector<AttrId>& z) {
    std::vector<AttrId> xy = AppendDistinctAttrs(x, y);
    std::vector<AttrId> xz = AppendDistinctAttrs(x, z);
    std::vector<AttrId> pair_cols = xy;
    pair_cols.insert(pair_cols.end(), xz.begin(), xz.end());
    return std::make_unique<EmvdState>(
        x, xy, xz, pair_cols.size(), options_.domain_size, Keys(rel, x),
        Keys(rel, xy), Keys(rel, xz), Keys(rel, pair_cols));
  }

  void AddDep(const Dependency& dep, bool is_premise) {
    std::unique_ptr<DepState> state;
    switch (dep.kind()) {
      case DependencyKind::kFd: {
        const Fd& fd = dep.fd();
        std::vector<AttrId> pair_cols = fd.lhs;
        pair_cols.insert(pair_cols.end(), fd.rhs.begin(), fd.rhs.end());
        state = std::make_unique<FdState>(fd, options_.domain_size,
                                          Keys(fd.rel, fd.lhs),
                                          Keys(fd.rel, pair_cols));
        break;
      }
      case DependencyKind::kInd: {
        const Ind& ind = dep.ind();
        state = std::make_unique<IndState>(ind, options_.domain_size,
                                           Keys(ind.lhs_rel, ind.lhs),
                                           Keys(ind.rhs_rel, ind.rhs));
        break;
      }
      case DependencyKind::kRd:
        state = std::make_unique<RdState>(dep.rd(), space_[dep.rd().rel],
                                          options_.domain_size,
                                          pow_[dep.rd().rel]);
        break;
      case DependencyKind::kEmvd: {
        const Emvd& e = dep.emvd();
        state = MakeEmvdState(e.rel, e.x, e.y, e.z);
        break;
      }
      case DependencyKind::kMvd: {
        const Mvd& m = dep.mvd();
        state = MakeEmvdState(m.rel, m.x, m.y, MvdComplement(*scheme_, m));
        break;
      }
    }
    std::vector<RelId> rels = DepRels(dep);
    RelId max_rel = *std::max_element(rels.begin(), rels.end());
    for (RelId rel : rels) deps_by_rel_[rel].push_back(state.get());
    if (is_premise) {
      if (state->MonotoneViolation()) {
        for (RelId rel : rels) monotone_by_rel_[rel].push_back(state.get());
      }
      final_premises_by_rel_[max_rel].push_back(state.get());
    } else {
      conclusion_state_ = state.get();
      conclusion_ready_rel_ = max_rel;
    }
    states_.push_back(std::move(state));
  }

  void IncludeCode(RelId rel, std::uint32_t code) {
    for (DepState* d : deps_by_rel_[rel]) d->Include(rel, code);
    chosen_[rel].push_back(code);
  }
  void ExcludeCode(RelId rel, std::uint32_t code) {
    chosen_[rel].pop_back();
    for (auto it = deps_by_rel_[rel].rbegin();
         it != deps_by_rel_[rel].rend(); ++it) {
      (*it)->Exclude(rel, code);
    }
  }

  /// Relation `rel`'s tuple set is finalized for this subtree: count the
  /// partial candidate, apply final premise / conclusion pruning, and
  /// either descend into the next relation or report the counterexample.
  void Boundary(RelId rel) {
    if (options_.cancel != nullptr && options_.cancel->exhausted()) {
      // Cancelled by a racing probe: stop with no verdict (the caller
      // surfaces this as exhaustion, never as "no counterexample").
      budget_hit_ = true;
      stop_ = true;
      return;
    }
    if (control_ != nullptr) {
      // A strictly lower-indexed sibling holds the winning counterexample:
      // nothing this task could find can win the reduction, so abandon.
      if (control_->best_task.load(std::memory_order_relaxed) < task_index_) {
        stop_ = true;
        return;
      }
      ++result_.candidates_tested;
      if (!control_->meter->Charge()) {
        budget_hit_ = true;
        stop_ = true;
        return;
      }
    } else if (++result_.candidates_tested > options_.max_candidates) {
      budget_hit_ = true;
      stop_ = true;
      return;
    }
    for (DepState* d : final_premises_by_rel_[rel]) {
      if (!d->Satisfied()) return;  // premise final and violated: prune
    }
    if (rel == conclusion_ready_rel_ && conclusion_state_->Satisfied()) {
      return;  // conclusion final and satisfied: no completion violates it
    }
    if (rel + 1 == scheme_->size()) {
      // Every premise passed its final check and the conclusion was
      // violated at its final check: a genuine counterexample.
      result_.counterexample = BuildDatabase();
      if (control_ != nullptr) {
        // CAS-min: claim the win unless a lower-indexed task beat us.
        std::uint32_t cur = control_->best_task.load(std::memory_order_relaxed);
        while (task_index_ < cur &&
               !control_->best_task.compare_exchange_weak(
                   cur, task_index_, std::memory_order_acq_rel)) {
        }
      }
      stop_ = true;
      return;
    }
    Enumerate(rel + 1, 0, 0);
  }

  /// Pre-order subset DFS over relation `rel`'s tuple-space codes, visiting
  /// the current subset as a boundary before extending it — the same
  /// candidate order as the legacy engine's Combinations().
  void Enumerate(RelId rel, std::uint32_t start, std::size_t count) {
    if (stop_) return;
    Boundary(rel);
    if (stop_ || count >= options_.max_tuples_per_relation) return;
    std::uint32_t end = static_cast<std::uint32_t>(space_[rel]);
    for (std::uint32_t code = start; code < end && !stop_; ++code) {
      IncludeCode(rel, code);
      bool dead = false;
      for (DepState* d : monotone_by_rel_[rel]) {
        if (!d->Satisfied()) {
          dead = true;  // FD/RD premise violation: monotone, prune subtree
          break;
        }
      }
      if (!dead) Enumerate(rel, code + 1, count + 1);
      ExcludeCode(rel, code);
    }
  }

  Database BuildDatabase() const {
    Database db(scheme_);
    for (RelId rel = 0; rel < scheme_->size(); ++rel) {
      for (std::uint32_t code : chosen_[rel]) {
        std::size_t arity = scheme_->relation(rel).arity();
        Tuple t(arity);
        std::uint64_t rest = code;
        for (std::size_t a = 0; a < arity; ++a) {
          t[a] = Value::Int(
              static_cast<std::int64_t>(rest % options_.domain_size));
          rest /= options_.domain_size;
        }
        db.Insert(rel, std::move(t));
      }
    }
    return db;
  }

  SchemePtr scheme_;
  BoundedSearchOptions options_;
  bool feasible_ = true;

  std::vector<std::uint64_t> space_;               // per rel: domain^arity
  std::vector<std::vector<std::uint64_t>> pow_;    // per rel, col: domain^col

  /// Key tables compiled for this search only (no workspace passed);
  /// deque so DepState pointers stay stable.
  std::deque<std::vector<std::uint32_t>> owned_tables_;
  std::vector<std::unique_ptr<DepState>> states_;
  std::vector<std::vector<DepState*>> deps_by_rel_;
  std::vector<std::vector<DepState*>> monotone_by_rel_;
  std::vector<std::vector<DepState*>> final_premises_by_rel_;
  DepState* conclusion_state_ = nullptr;
  RelId conclusion_ready_rel_ = 0;

  std::vector<std::vector<std::uint32_t>> chosen_;
  BoundedSearchResult result_;
  bool stop_ = false;
  bool budget_hit_ = false;

  /// kParallel only: shared cancellation/budget state and this searcher's
  /// task index in the deterministic reduction order.
  ParallelSearchControl* control_ = nullptr;
  std::uint32_t task_index_ = 0;
};

/// kParallel driver: decompose the candidate tree at relation 0, run one
/// IdSpaceSearcher per subtree on the pool, reduce lowest-index-first.
Result<BoundedSearchResult> ParallelSearch(
    const SchemePtr& scheme, const std::vector<Dependency>& premises,
    const Dependency& conclusion, const BoundedSearchOptions& options) {
  // All per-task searchers compile through one shared key-table cache so
  // the tables are built once; construction stays on this thread and the
  // tasks only read the (immutable, stably-referenced) tables.
  BoundedSearchWorkspace local_workspace;
  BoundedSearchOptions task_options = options;
  if (task_options.workspace == nullptr) {
    task_options.workspace = &local_workspace;
  }

  auto probe = std::make_unique<IdSpaceSearcher>(scheme, premises, conclusion,
                                                 task_options);
  if (!probe->feasible()) {
    // Same fallback as kIdSpace: the key tables would not fit.
    return LegacySearch(scheme, premises, conclusion, options);
  }
  if (scheme->size() == 0) return probe->Run();

  std::size_t branches = options.max_tuples_per_relation > 0
                             ? static_cast<std::size_t>(probe->root_space())
                             : 0;
  std::size_t tasks = 1 + branches;

  Budget meter_budget;
  meter_budget.steps = options.max_candidates;
  SharedBudgetMeter meter(meter_budget, options.max_candidates);
  ParallelSearchControl control;
  control.meter = &meter;

  std::vector<std::unique_ptr<IdSpaceSearcher>> searchers;
  searchers.reserve(tasks);
  searchers.push_back(std::move(probe));
  for (std::size_t i = 1; i < tasks; ++i) {
    searchers.push_back(std::make_unique<IdSpaceSearcher>(
        scheme, premises, conclusion, task_options));
  }
  for (std::size_t i = 0; i < tasks; ++i) {
    searchers[i]->SetParallelControl(&control, static_cast<std::uint32_t>(i));
  }

  auto run_tasks = [&](TaskPool& pool) {
    pool.ParallelFor(tasks, [&](std::size_t i) {
      if (i == 0) {
        searchers[0]->RunRootTask();
      } else {
        searchers[i]->RunBranchTask(static_cast<std::uint32_t>(i - 1));
      }
    });
  };
  if (options.pool != nullptr) {
    run_tasks(*options.pool);
  } else {
    unsigned threads = options.threads != 0
                           ? options.threads
                           : std::max(1u, std::thread::hardware_concurrency());
    TaskPool pool(threads);
    run_tasks(pool);
  }

  // Deterministic reduction on the joining thread: sum the per-task
  // counters in index order, then take the lowest-index winner's witness.
  BoundedSearchResult result;
  for (const auto& searcher : searchers) {
    result.candidates_tested += searcher->candidates_tested();
  }
  std::uint32_t best = control.best_task.load(std::memory_order_acquire);
  if (best != ParallelSearchControl::kNoTask) {
    result.counterexample = searchers[best]->TakeCounterexample();
  }
  result.exhausted = !meter.exhausted();
  if (options.cancel != nullptr && options.cancel->exhausted()) {
    // Cancelled mid-scan: whatever was not found cannot be ruled out.
    result.exhausted = false;
  }
  return result;
}

}  // namespace

BoundedSearchEstimate EstimateBoundedSearch(
    const DatabaseScheme& scheme, const std::vector<Dependency>& premises,
    const Dependency& conclusion, const BoundedSearchOptions& options) {
  BoundedSearchEstimate est;
  // Per-relation tuple-space sizes (domain^arity), saturating.
  std::vector<std::uint64_t> space(scheme.size(), 1);
  bool spaces_fit = options.domain_size <= kMaxTupleSpace;
  for (RelId rel = 0; rel < scheme.size(); ++rel) {
    std::size_t arity = scheme.relation(rel).arity();
    for (std::size_t a = 0; a < arity; ++a) {
      space[rel] = SatMul(space[rel], options.domain_size);
    }
    if (space[rel] > kMaxTupleSpace) spaces_fit = false;
  }
  // Id-space table budget: a dependency's largest array is the pair-key
  // counter, whose key space is at most space^2 (the concatenated column
  // lists never exceed twice the arity); the per-code key tables add
  // O(space).
  auto dep_cost = [&](const Dependency& dep) {
    std::uint64_t s = 0;
    for (RelId rel : DepRels(dep)) s = std::max(s, space[rel]);
    return SatAdd(SatMul(s, s), SatMul(4, s));
  };
  for (const Dependency& p : premises) {
    est.table_entries = SatAdd(est.table_entries, dep_cost(p));
  }
  est.table_entries = SatAdd(est.table_entries, dep_cost(conclusion));
  est.table_bytes = SatMul(est.table_entries, sizeof(std::uint32_t));
  est.id_space_feasible = spaces_fit &&
                          est.table_entries <= kMaxTableEntries &&
                          est.table_bytes <= options.max_bytes;
  est.legacy_bytes = LegacyMaterializationBytes(scheme, options);
  est.legacy_feasible = est.legacy_bytes <= options.max_bytes;
  // Candidate bound: relation `rel` contributes S_rel subsets of size <=
  // max_tuples_per_relation of its tuple space, and the subset DFS visits
  // one boundary per combination of subsets chosen for relations 0..rel —
  // sum over rel of prod_{r <= rel} S_r boundaries with no pruning (the
  // engines only ever test fewer; the legacy engine's complete-candidate
  // count is the last prefix product, also below this sum).
  std::uint64_t prefix = 1;
  for (RelId rel = 0; rel < scheme.size(); ++rel) {
    std::uint64_t binom = 1, subsets = 1;
    for (std::uint64_t i = 1;
         i <= options.max_tuples_per_relation && i <= space[rel]; ++i) {
      binom = SatMul(binom, space[rel] - i + 1) / i;
      subsets = SatAdd(subsets, binom);
    }
    prefix = SatMul(prefix, subsets);
    est.candidate_bound = SatAdd(est.candidate_bound, prefix);
  }
  if (scheme.size() == 0) est.candidate_bound = 1;
  return est;
}

const std::vector<std::uint32_t>& BoundedSearchWorkspace::KeyTable(
    RelId rel, std::size_t domain, const std::vector<AttrId>& cols,
    std::uint64_t space_size, const std::vector<std::uint64_t>& pow) {
  // Whole-call lock: tables are compiled during searcher setup, never in
  // enumeration hot loops, and the node-based map keeps handed-out
  // references valid across later inserts.
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      tables_.try_emplace(std::make_tuple(rel, domain, cols));
  if (inserted) {
    ++stats_.tables_built;
    it->second = ccfp::KeyTable(space_size, domain, cols, pow);
  } else {
    // One workspace serves one scheme: a size mismatch means the caller
    // shared it across schemes, which would otherwise be silent
    // out-of-bounds indexing in the DepState counters.
    CCFP_CHECK_MSG(it->second.size() == space_size,
                   "BoundedSearchWorkspace reused across schemes");
    ++stats_.tables_reused;
  }
  return it->second;
}

Result<BoundedSearchResult> FindCounterexample(
    SchemePtr scheme, const std::vector<Dependency>& premises,
    const Dependency& conclusion, const BoundedSearchOptions& options) {
  for (const Dependency& p : premises) {
    CCFP_RETURN_NOT_OK(Validate(*scheme, p));
  }
  CCFP_RETURN_NOT_OK(Validate(*scheme, conclusion));

  if (options.cancel != nullptr && options.cancel->exhausted()) {
    // Cancelled before the first candidate: unknown, zero work.
    BoundedSearchResult cancelled;
    cancelled.exhausted = false;
    return cancelled;
  }
  if (options.engine == BoundedSearchEngine::kParallel) {
    return ParallelSearch(scheme, premises, conclusion, options);
  }
  if (options.engine == BoundedSearchEngine::kIdSpace) {
    IdSpaceSearcher searcher(scheme, premises, conclusion, options);
    if (searcher.feasible()) return searcher.Run();
    // Key tables would not fit: fall through to the legacy engine.
  }
  return LegacySearch(scheme, premises, conclusion, options);
}

Result<bool> HasBoundedCounterexample(SchemePtr scheme,
                                      const std::vector<Dependency>& premises,
                                      const Dependency& conclusion,
                                      const BoundedSearchOptions& options) {
  CCFP_ASSIGN_OR_RETURN(
      BoundedSearchResult result,
      FindCounterexample(std::move(scheme), premises, conclusion, options));
  if (result.counterexample.has_value()) return true;
  if (!result.exhausted) {
    return Status::ResourceExhausted(
        "bounded search budget exhausted without a verdict");
  }
  return false;
}

}  // namespace ccfp
