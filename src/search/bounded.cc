#include "search/bounded.h"

#include <functional>

#include "core/satisfies.h"
#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

namespace {

// All tuples over `arity` positions with entries in {0..domain-1}, in
// lexicographic order.
std::vector<Tuple> TupleSpace(std::size_t arity, std::size_t domain) {
  std::vector<Tuple> space;
  std::uint64_t total = 1;
  for (std::size_t i = 0; i < arity; ++i) total *= domain;
  space.reserve(total);
  for (std::uint64_t code = 0; code < total; ++code) {
    Tuple t(arity);
    std::uint64_t rest = code;
    for (std::size_t i = 0; i < arity; ++i) {
      t[i] = Value::Int(static_cast<std::int64_t>(rest % domain));
      rest /= domain;
    }
    space.push_back(std::move(t));
  }
  return space;
}

// All subsets of {0..n-1} of size <= k, as index lists.
std::vector<std::vector<std::size_t>> Combinations(std::size_t n,
                                                   std::size_t k) {
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> current;
  std::function<void(std::size_t)> rec = [&](std::size_t start) {
    out.push_back(current);
    if (current.size() >= k) return;
    for (std::size_t i = start; i < n; ++i) {
      current.push_back(i);
      rec(i + 1);
      current.pop_back();
    }
  };
  rec(0);
  return out;
}

}  // namespace

Result<BoundedSearchResult> FindCounterexample(
    SchemePtr scheme, const std::vector<Dependency>& premises,
    const Dependency& conclusion, const BoundedSearchOptions& options) {
  for (const Dependency& p : premises) {
    CCFP_RETURN_NOT_OK(Validate(*scheme, p));
  }
  CCFP_RETURN_NOT_OK(Validate(*scheme, conclusion));

  BoundedSearchResult result;

  // Per-relation candidate tuple sets.
  std::vector<std::vector<Tuple>> spaces;
  std::vector<std::vector<std::vector<std::size_t>>> choices;
  for (RelId rel = 0; rel < scheme->size(); ++rel) {
    spaces.push_back(TupleSpace(scheme->relation(rel).arity(),
                                options.domain_size));
    choices.push_back(Combinations(spaces.back().size(),
                                   options.max_tuples_per_relation));
  }

  // Depth-first product over per-relation choices.
  Database db(scheme);
  bool budget_hit = false;
  std::function<bool(RelId)> rec = [&](RelId rel) -> bool {
    if (rel == scheme->size()) {
      if (++result.candidates_tested > options.max_candidates) {
        budget_hit = true;
        return true;  // stop
      }
      if (Satisfies(db, conclusion)) return false;
      for (const Dependency& p : premises) {
        if (!Satisfies(db, p)) return false;
      }
      result.counterexample = db;  // copy: db is reused by the recursion
      return true;
    }
    for (const std::vector<std::size_t>& subset : choices[rel]) {
      Relation fresh(scheme->relation(rel).arity());
      for (std::size_t idx : subset) fresh.Insert(spaces[rel][idx]);
      db.relation(rel) = std::move(fresh);
      if (rec(rel + 1)) return true;
    }
    return false;
  };
  rec(0);
  result.exhausted = !budget_hit;
  return result;
}

bool HasBoundedCounterexample(SchemePtr scheme,
                              const std::vector<Dependency>& premises,
                              const Dependency& conclusion,
                              const BoundedSearchOptions& options) {
  Result<BoundedSearchResult> result =
      FindCounterexample(std::move(scheme), premises, conclusion, options);
  CCFP_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  CCFP_CHECK_MSG(result->exhausted || result->counterexample.has_value(),
                 "bounded search budget exhausted without a verdict");
  return result->counterexample.has_value();
}

}  // namespace ccfp
