#ifndef CCFP_SEARCH_BOUNDED_H_
#define CCFP_SEARCH_BOUNDED_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <tuple>
#include <vector>

#include "core/database.h"
#include "core/dependency.h"
#include "util/budget.h"
#include "util/status.h"
#include "util/task_pool.h"

namespace ccfp {

/// Caller-owned compile cache for the id-space bounded searcher: the
/// packed per-code projection-key tables, keyed by (relation, domain,
/// column sequence). One search compiles a table the first time any
/// dependency projects that relation onto those columns; every later
/// dependency — and every later *search over the same scheme* that passes
/// the same workspace via BoundedSearchOptions::workspace — reuses it.
/// The k-ary closure fixpoint and the special-case probes fire hundreds
/// of searches over one scheme, so the tables dominate setup cost there.
/// Per-search counter state is never cached; only the immutable tables.
///
/// Thread-safe: KeyTable serializes concurrent callers behind a mutex
/// (tables are compiled during searcher *setup*, not in enumeration hot
/// loops, so one lock per table lookup is cheap), and a handed-out table
/// reference stays valid and immutable for the workspace's lifetime
/// (node-based map) — so many sessions of a solver service can share one
/// per-scheme workspace.
class BoundedSearchWorkspace {
 public:
  struct Stats {
    std::uint64_t tables_built = 0;
    std::uint64_t tables_reused = 0;
  };

  /// The key table for projecting relation `rel`'s code space onto `cols`
  /// under `domain`; built on first use. `space_size` and `pow` must be
  /// the ones the searcher derived for (rel, domain) — i.e. always pass
  /// the same scheme with the same workspace. The reference stays valid
  /// for the workspace's lifetime.
  const std::vector<std::uint32_t>& KeyTable(
      RelId rel, std::size_t domain, const std::vector<AttrId>& cols,
      std::uint64_t space_size, const std::vector<std::uint64_t>& pow);

  /// Snapshot of the counters (by value: safe against concurrent builds).
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::tuple<RelId, std::size_t, std::vector<AttrId>>,
           std::vector<std::uint32_t>>
      tables_;
  Stats stats_;
};

/// Exhaustive bounded-model search: enumerate every database over the
/// scheme whose relations each have at most `max_tuples_per_relation`
/// tuples drawn from a fixed integer domain {0..domain_size-1}, and look
/// for a counterexample to premises |= conclusion.
///
/// This is a *refutation-complete-up-to-the-bound* oracle: a returned
/// database is a genuine counterexample (so the implication certainly
/// fails, finitely and unrestrictedly); exhausting the space only refutes
/// counterexamples within the bound. The paper's Figures 4.1-7.5 are all
/// counterexample databases of exactly this kind (hand-built); this module
/// mechanizes finding small ones.
///
/// ## Id-space enumeration strategy (the default engine)
///
/// Candidate databases are never materialized as heap `Value` tuples.
/// A candidate tuple over a relation of arity m is just an integer *code*
/// in [0, domain^m) (digit i of the code, base `domain_size`, is column i),
/// and a candidate relation is a subset of codes, enumerated by a DFS that
/// includes/excludes one code at a time. Before the search starts, every
/// dependency precomputes, per code, the packed integer keys of the
/// projections it cares about (FD: lhs and lhs++rhs keys; IND: the two
/// side keys; EMVD: X, XY, XZ and XY++XZ keys). During the DFS each
/// dependency maintains *incremental* counters — e.g. an FD keeps, per lhs
/// key, the number of distinct rhs keys present, and a global count of lhs
/// keys with >= 2 of them — so including or excluding a tuple is O(deps)
/// array updates and "does this candidate satisfy d?" is a counter == 0
/// test. No per-candidate index is ever rebuilt.
///
/// The DFS visits relations in scheme order and prunes soundly:
///   * a premise FD/RD violation is monotone under tuple insertion, so a
///     subtree is abandoned the moment one fires inside its relation;
///   * when the last relation a premise mentions is finalized, the premise
///     is final — if violated, no completion is a counterexample;
///   * when the last relation the conclusion mentions is finalized and the
///     conclusion is satisfied, no completion can violate it.
/// Pruning only removes subtrees that provably contain no counterexample,
/// so both engines agree on counterexample existence (differentially
/// tested in tests/bounded_cross_oracle_test.cc).
enum class BoundedSearchEngine : std::uint8_t {
  /// Integer-coded DFS with incremental per-dependency counters and sound
  /// pruning, as described above. The default.
  kIdSpace = 0,
  /// The original engine: materialize every candidate as Value tuples and
  /// call the model checker per candidate. Kept as the differential
  /// reference and as the fallback when the precomputed key tables would
  /// not fit in memory.
  kLegacy = 1,
  /// The id-space engine with the top of the candidate tree split into
  /// stealable tasks on a work-stealing TaskPool: relation 0's empty
  /// subtree plus one subtree per lowest included code. Each task carries
  /// its own counter scratch over shared read-only key tables; the first
  /// counterexample cancels siblings through an atomic flag, and the
  /// *lowest* task index wins the reduction, so verdicts and witnesses are
  /// identical to kIdSpace at every thread count. Candidate budgets are
  /// charged through one shared atomic meter — exhaustion anywhere drains
  /// every task and surfaces as the usual non-exhausted result. Falls back
  /// to kLegacy exactly where kIdSpace does.
  kParallel = 2,
};

struct BoundedSearchOptions {
  std::size_t max_tuples_per_relation = 2;
  std::size_t domain_size = 2;
  /// Overall cap on candidate evaluations, guarding combinatorial blow-up.
  /// The legacy engine counts complete candidate databases; the id-space
  /// engine counts *partial* candidates (each relation-subset completion),
  /// since pruning means most complete candidates are never reached.
  std::uint64_t max_candidates = 1u << 24;
  /// Ceiling on the logical bytes a search may *materialize up front*
  /// (precomputed key tables, counter arrays, legacy tuple spaces and
  /// subset lists — the search's only growing allocations). Each engine
  /// estimates its materialization before allocating and, over the
  /// ceiling, declines to run: the search returns `exhausted == false`
  /// with no counterexample, which the entry points surface as
  /// ResourceExhausted — an unknown, never a wrong answer.
  std::uint64_t max_bytes = UINT64_MAX;
  BoundedSearchEngine engine = BoundedSearchEngine::kIdSpace;
  /// Optional caller-owned compile cache shared across searches over the
  /// same scheme (see BoundedSearchWorkspace). Null: each search compiles
  /// its own tables. Not owned; must outlive the search.
  BoundedSearchWorkspace* workspace = nullptr;
  /// kParallel only: executor count for the transient pool (0 = hardware
  /// concurrency). Ignored when `pool` is set.
  unsigned threads = 0;
  /// kParallel only: run on this caller-owned pool instead of spinning up
  /// a transient one per search. Not owned; must outlive the search.
  TaskPool* pool = nullptr;
  /// Optional cooperative cancellation token (not owned): the engines
  /// poll `cancel->exhausted()` at candidate checkpoints and stop early
  /// with `exhausted == false` (surfaced as ResourceExhausted — unknown,
  /// never a wrong answer) once another racer marked it. The search never
  /// charges this meter.
  SharedBudgetMeter* cancel = nullptr;

  /// Maps the shared Budget vocabulary onto the search's candidate cap
  /// (steps -> max_candidates) and byte ceiling. The shape knobs (tuples
  /// per relation, domain size) describe the search *space*, not a
  /// resource budget, and keep their defaults.
  static BoundedSearchOptions FromBudget(const Budget& budget) {
    BoundedSearchOptions options;
    options.max_candidates = budget.steps;
    options.max_bytes = budget.bytes;
    return options;
  }
};

/// Static pre-run estimate of what one search shape would cost, computed
/// from the scheme, the dependency set, and the shape/byte knobs alone —
/// no tables are compiled and no candidates enumerated. The refutation
/// portfolio (search/portfolio.h) uses this to order its shape ladder and
/// to *skip* rungs that could never run (counted, never silently), and the
/// id-space searcher itself uses the same estimate as its feasibility
/// gate, so "the estimate says infeasible" and "the engine would decline"
/// are one predicate. All arithmetic saturates at UINT64_MAX: a saturated
/// estimate certainly busts any real cap.
struct BoundedSearchEstimate {
  /// The id-space engine would run this shape: every tuple space and the
  /// compiled key tables fit its hard caps and `options.max_bytes`.
  bool id_space_feasible = false;
  /// The legacy fallback's up-front materialization fits
  /// `options.max_bytes` (the legacy engine has no other gate).
  bool legacy_feasible = false;
  /// Key-table + counter entries the id-space engine would compile.
  std::uint64_t table_entries = 0;
  /// ... in bytes (each entry is one uint32).
  std::uint64_t table_bytes = 0;
  /// Bytes the legacy engine would materialize (tuple spaces + subsets).
  std::uint64_t legacy_bytes = 0;
  /// Upper bound on the candidates a full scan can test: the number of
  /// subset-DFS boundary visits with no pruning (the engines only ever
  /// test fewer). Doubles as the shape's ladder-ordering cost.
  std::uint64_t candidate_bound = 0;

  /// Some engine would run this shape.
  bool feasible() const { return id_space_feasible || legacy_feasible; }
};

/// Estimates the cost of searching one shape (see BoundedSearchEstimate).
/// Only `options.max_tuples_per_relation`, `domain_size`, and `max_bytes`
/// are consulted.
BoundedSearchEstimate EstimateBoundedSearch(
    const DatabaseScheme& scheme, const std::vector<Dependency>& premises,
    const Dependency& conclusion, const BoundedSearchOptions& options);

struct BoundedSearchResult {
  /// A database satisfying every premise and violating the conclusion, if
  /// one exists within the bound.
  std::optional<Database> counterexample;
  /// Candidate evaluations performed (see BoundedSearchOptions for the
  /// per-engine meaning).
  std::uint64_t candidates_tested = 0;
  /// True if the whole bounded space was scanned (no counterexample below
  /// the bound); false if max_candidates stopped the search early.
  bool exhausted = true;
};

/// Searches for a counterexample to premises |= conclusion.
/// By symmetry of the semantics under renaming of values, candidate
/// relations are enumerated as subsets of the domain^arity tuple space.
Result<BoundedSearchResult> FindCounterexample(
    SchemePtr scheme, const std::vector<Dependency>& premises,
    const Dependency& conclusion, const BoundedSearchOptions& options = {});

/// Convenience: true iff a counterexample exists within the bound. Like
/// every other entry point, budget exhaustion without a verdict (the scan
/// stopped early and found nothing) is a ResourceExhausted *status*, never
/// an abort — raise max_candidates and retry.
Result<bool> HasBoundedCounterexample(SchemePtr scheme,
                                      const std::vector<Dependency>& premises,
                                      const Dependency& conclusion,
                                      const BoundedSearchOptions& options = {});

}  // namespace ccfp

#endif  // CCFP_SEARCH_BOUNDED_H_
