#ifndef CCFP_SEARCH_BOUNDED_H_
#define CCFP_SEARCH_BOUNDED_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/database.h"
#include "core/dependency.h"
#include "util/status.h"

namespace ccfp {

/// Exhaustive bounded-model search: enumerate every database over the
/// scheme whose relations each have at most `max_tuples_per_relation`
/// tuples drawn from a fixed integer domain {0..domain_size-1}, and look
/// for a counterexample to premises |= conclusion.
///
/// This is a *refutation-complete-up-to-the-bound* oracle: a returned
/// database is a genuine counterexample (so the implication certainly
/// fails, finitely and unrestrictedly); exhausting the space only refutes
/// counterexamples within the bound. The paper's Figures 4.1-7.5 are all
/// counterexample databases of exactly this kind (hand-built); this module
/// mechanizes finding small ones.
struct BoundedSearchOptions {
  std::size_t max_tuples_per_relation = 2;
  std::size_t domain_size = 2;
  /// Overall cap on candidate databases, guarding combinatorial blow-up.
  std::uint64_t max_candidates = 1u << 24;
};

struct BoundedSearchResult {
  /// A database satisfying every premise and violating the conclusion, if
  /// one exists within the bound.
  std::optional<Database> counterexample;
  std::uint64_t candidates_tested = 0;
  /// True if the whole bounded space was scanned (no counterexample below
  /// the bound); false if max_candidates stopped the search early.
  bool exhausted = true;
};

/// Searches for a counterexample to premises |= conclusion.
/// By symmetry of the semantics under renaming of values, candidate
/// relations are enumerated as subsets of the domain^arity tuple space.
Result<BoundedSearchResult> FindCounterexample(
    SchemePtr scheme, const std::vector<Dependency>& premises,
    const Dependency& conclusion, const BoundedSearchOptions& options = {});

/// Convenience: true iff a counterexample exists within the bound.
/// CHECK-fails on search-budget exhaustion (raise max_candidates).
bool HasBoundedCounterexample(SchemePtr scheme,
                              const std::vector<Dependency>& premises,
                              const Dependency& conclusion,
                              const BoundedSearchOptions& options = {});

}  // namespace ccfp

#endif  // CCFP_SEARCH_BOUNDED_H_
