#include "search/portfolio.h"

#include <algorithm>
#include <utility>

#include "util/strings.h"

namespace ccfp {

namespace {

/// Ladder ordering: cheapest candidate space first; ties broken by the
/// smaller shape (fewer tuples, then fewer values) so the base shape —
/// minimal on both axes — always sorts first and the order is total.
struct LadderEntry {
  SearchShape shape;
  std::uint64_t cost = 0;

  bool operator<(const LadderEntry& other) const {
    if (cost != other.cost) return cost < other.cost;
    if (shape.max_tuples_per_relation != other.shape.max_tuples_per_relation) {
      return shape.max_tuples_per_relation < other.shape.max_tuples_per_relation;
    }
    return shape.domain_size < other.shape.domain_size;
  }
};

BoundedSearchOptions ShapeOptions(const SearchShape& shape,
                                  std::uint64_t max_bytes) {
  BoundedSearchOptions o;
  o.max_tuples_per_relation = shape.max_tuples_per_relation;
  o.domain_size = shape.domain_size;
  o.max_bytes = max_bytes;
  return o;
}

}  // namespace

std::string SearchShape::ToString() const {
  return StrCat(max_tuples_per_relation, " tuples/relation over a ",
                domain_size, "-value domain");
}

const char* RungStatusToString(RungStatus status) {
  switch (status) {
    case RungStatus::kFullScan:
      return "full-scan";
    case RungStatus::kBudget:
      return "budget";
    case RungStatus::kFound:
      return "found";
    case RungStatus::kSkipped:
      return "skipped";
    case RungStatus::kSuperseded:
      return "superseded";
  }
  return "unknown";
}

RefutationPortfolio::RefutationPortfolio(SchemePtr scheme,
                                         std::vector<Dependency> premises,
                                         Dependency conclusion,
                                         PortfolioOptions options)
    : scheme_(std::move(scheme)),
      premises_(std::move(premises)),
      conclusion_(std::move(conclusion)),
      options_(options) {
  // Build the ladder eagerly: the candidate-space bound of a shape depends
  // only on the scheme and the dependency set, never on the run budget, so
  // the cost ordering is fixed at construction and every Run sees it.
  std::vector<LadderEntry> entries;
  entries.reserve((options_.tuple_growth + 1) * (options_.domain_growth + 1));
  for (std::size_t dt = 0; dt <= options_.tuple_growth; ++dt) {
    for (std::size_t dd = 0; dd <= options_.domain_growth; ++dd) {
      SearchShape shape;
      shape.max_tuples_per_relation = options_.base.max_tuples_per_relation + dt;
      shape.domain_size = options_.base.domain_size + dd;
      LadderEntry entry;
      entry.shape = shape;
      entry.cost = EstimateBoundedSearch(*scheme_, premises_, conclusion_,
                                         ShapeOptions(shape, UINT64_MAX))
                       .candidate_bound;
      entries.push_back(entry);
    }
  }
  std::sort(entries.begin(), entries.end());
  const std::size_t rungs =
      std::min(entries.size(), std::max<std::size_t>(options_.max_rungs, 1));
  ladder_.reserve(rungs);
  costs_.reserve(rungs);
  for (std::size_t i = 0; i < rungs; ++i) {
    ladder_.push_back(entries[i].shape);
    costs_.push_back(entries[i].cost);
  }
}

Result<PortfolioResult> RefutationPortfolio::Run(const Budget& budget) {
  for (const Dependency& p : premises_) {
    CCFP_RETURN_NOT_OK(Validate(*scheme_, p));
  }
  CCFP_RETURN_NOT_OK(Validate(*scheme_, conclusion_));

  const std::size_t n = ladder_.size();
  PortfolioResult out;
  out.rungs.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.rungs[i].shape = ladder_[i];

  // Feasibility against *this* run's byte ceiling. A grown rung only runs
  // on the id-space engine: the legacy fallback materializes its tuple
  // spaces up front, so letting it loose on a grown shape under the
  // default (unlimited) byte ceiling would allocate without bound. Rung 0
  // keeps the classic fixed-shape behavior exactly, legacy fallback
  // included, so a portfolio sweep never regresses the old search.
  std::vector<std::uint64_t> funded_costs = costs_;
  for (std::size_t i = 1; i < n; ++i) {
    BoundedSearchEstimate estimate = EstimateBoundedSearch(
        *scheme_, premises_, conclusion_, ShapeOptions(ladder_[i], budget.bytes));
    if (!estimate.id_space_feasible) {
      funded_costs[i] = 0;  // infeasible rungs ask nothing of the ladder budget
      out.rungs[i].note =
          StrCat("skipped: compiled tables for ", ladder_[i].ToString(),
                 " exceed the id-space caps or the byte ceiling (",
                 estimate.table_bytes, " table bytes)");
    }
  }

  const std::vector<Budget> shares = budget.SplitLadder(funded_costs);
  std::vector<std::size_t> live;
  live.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.rungs[i].share = shares[i].steps;
    if (i > 0 && funded_costs[i] == 0) {
      // Note already set: statically infeasible.
      continue;
    }
    if (i > 0 && shares[i].steps == 0) {
      out.rungs[i].note =
          StrCat("skipped: candidate budget drained by smaller shapes (",
                 ladder_[i].ToString(), " needs up to ", costs_[i],
                 " candidates)");
      continue;
    }
    live.push_back(i);
  }

  // Per-rung sticky cancel meters, chained under the caller's outer token
  // (never charged — each rung's deterministic ceiling is its share).
  Budget unmetered = Budget::Unlimited();
  unmetered.deadline.reset();
  std::vector<std::unique_ptr<SharedBudgetMeter>> meters(n);
  for (std::size_t i : live) {
    meters[i] =
        std::make_unique<SharedBudgetMeter>(unmetered, UINT64_MAX, options_.cancel);
  }

  BoundedSearchWorkspace local_workspace;
  BoundedSearchWorkspace* workspace =
      options_.workspace != nullptr ? options_.workspace : &local_workspace;

  std::vector<std::optional<Result<BoundedSearchResult>>> raw(n);
  auto run_rung = [&](std::size_t i) {
    BoundedSearchOptions o = ShapeOptions(ladder_[i], budget.bytes);
    o.max_candidates = shares[i].steps;
    o.workspace = workspace;
    o.cancel = meters[i].get();
    raw[i] = FindCounterexample(scheme_, premises_, conclusion_, o);
    if (raw[i]->ok() && (*raw[i])->counterexample.has_value()) {
      // A find at rung i supersedes every *higher* rung; lower rungs keep
      // running — a smaller shape may hold the witness that sequentially
      // wins, and determinism demands it gets to finish.
      for (std::size_t j : live) {
        if (j > i) meters[j]->MarkExhausted();
      }
    }
  };

  if (options_.pool != nullptr && live.size() > 1) {
    TaskGroup group(options_.pool);
    for (std::size_t i : live) {
      group.Spawn([&run_rung, i] { run_rung(i); });
    }
    group.Wait();
  } else {
    for (std::size_t i : live) {
      run_rung(i);
      if (raw[i]->ok() && (*raw[i])->counterexample.has_value()) break;
    }
  }

  // Reduction (joining thread, ladder order): the winner is the lowest
  // live rung with a raw find; every rung above it is rewritten to
  // kSuperseded with zeroed counters — exactly the report a sequential
  // sweep produces by never launching them — so the result is
  // bit-identical at every pool width.
  for (std::size_t i : live) {
    if (raw[i].has_value() && raw[i]->ok() && (*raw[i])->counterexample.has_value()) {
      out.winner = i;
      break;
    }
  }
  std::size_t largest_scanned_rung = PortfolioResult::kNoRung;
  for (std::size_t i = 0; i < n; ++i) {
    RungReport& rung = out.rungs[i];
    if (rung.status == RungStatus::kSkipped && std::find(live.begin(), live.end(), i) == live.end()) {
      ++out.rungs_skipped;
      continue;
    }
    if (out.winner != PortfolioResult::kNoRung && i > out.winner) {
      rung.status = RungStatus::kSuperseded;
      rung.candidates_tested = 0;
      rung.note = "superseded: a counterexample surfaced at a smaller shape";
      continue;
    }
    // A live rung at or below the winner always ran (sequential sweeps
    // only break *after* the winning rung).
    CCFP_RETURN_NOT_OK(raw[i]->status());
    const BoundedSearchResult& result = **raw[i];
    rung.candidates_tested = result.candidates_tested;
    out.candidates_tested += result.candidates_tested;
    if (i == out.winner) {
      rung.status = RungStatus::kFound;
      rung.note = StrCat("counterexample found at ", ladder_[i].ToString());
      out.counterexample = (*raw[i])->counterexample;
    } else if (result.exhausted) {
      rung.status = RungStatus::kFullScan;
      rung.note = StrCat("full scan: no counterexample with <= ",
                         ladder_[i].ToString());
      ++out.rungs_scanned;
      largest_scanned_rung = i;  // ladder order is cost order
    } else {
      rung.status = RungStatus::kBudget;
      rung.note = StrCat("stopped early: candidate share of ", rung.share,
                         " drained at ", ladder_[i].ToString());
    }
  }
  if (largest_scanned_rung != PortfolioResult::kNoRung) {
    out.largest_scanned = ladder_[largest_scanned_rung];
  }
  return out;
}

}  // namespace ccfp
