#ifndef CCFP_SEARCH_PORTFOLIO_H_
#define CCFP_SEARCH_PORTFOLIO_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/dependency.h"
#include "search/bounded.h"
#include "util/budget.h"
#include "util/status.h"
#include "util/task_pool.h"

namespace ccfp {

/// One rung of the refutation ladder: which candidate databases a bounded
/// search enumerates (tuples per relation, value-domain size). A shape
/// describes the search *space*; the candidate budget caps the scan.
struct SearchShape {
  std::size_t max_tuples_per_relation = 2;
  std::size_t domain_size = 2;

  bool operator==(const SearchShape& other) const {
    return max_tuples_per_relation == other.max_tuples_per_relation &&
           domain_size == other.domain_size;
  }

  /// "3 tuples/relation over a 2-value domain".
  std::string ToString() const;
};

struct PortfolioOptions {
  /// Rung 0 — always present, always first, never pre-skipped, and funded
  /// before any grown shape sees a step, so a portfolio sweep decides
  /// everything a single fixed-shape search would (see Budget::SplitLadder).
  SearchShape base;
  /// How far the ladder grows each axis beyond the base shape: candidate
  /// rungs are every (t, d) with base.t <= t <= base.t + tuple_growth and
  /// base.d <= d <= base.d + domain_growth.
  std::size_t tuple_growth = 2;
  std::size_t domain_growth = 2;
  /// Ladder truncation after cost-ordering (>= 1; clamped). 1 degenerates
  /// to the classic fixed-shape search.
  std::size_t max_rungs = 6;
  /// Compiled key tables shared across rungs *and* across searches over
  /// the same scheme (the table key includes the domain, so every shape
  /// caches cleanly side by side). Null: the portfolio compiles into a
  /// private per-run workspace shared by its rungs. Not owned.
  BoundedSearchWorkspace* workspace = nullptr;
  /// Run the rungs as stealable tasks on this pool (not owned). Null: a
  /// sequential ladder sweep on the caller, lowest rung first, stopping at
  /// the first find. Results are bit-identical either way — see Run().
  TaskPool* pool = nullptr;
  /// Outer cooperative-cancellation token (not owned; may be null): the
  /// portfolio chains one child meter per rung under it, so marking it
  /// (e.g. the mixed route's chase turning decisive) drains every rung at
  /// its next candidate boundary. Never charged.
  SharedBudgetMeter* cancel = nullptr;
};

enum class RungStatus : std::uint8_t {
  /// Ran to the end of its shape: no counterexample exists below it.
  kFullScan = 0,
  /// Ran out of its candidate share (or was cancelled) mid-scan.
  kBudget = 1,
  /// Found the portfolio's winning (raw, unverified) counterexample.
  kFound = 2,
  /// Never ran: statically infeasible, or the ladder budget drained
  /// before this rung. Counted in `rungs_skipped`, never silent — the
  /// note says why.
  kSkipped = 3,
  /// Never counted: a smaller shape found a counterexample, making this
  /// rung's scan moot (its partial work, if any, is discarded so the
  /// report is identical to a sequential sweep that never launched it).
  kSuperseded = 4,
};

const char* RungStatusToString(RungStatus status);

/// What one rung did, in ladder (cost) order.
struct RungReport {
  SearchShape shape;
  RungStatus status = RungStatus::kSkipped;
  /// The candidate ceiling this rung was allotted by Budget::SplitLadder.
  std::uint64_t share = 0;
  /// Candidate evaluations performed (0 for kSkipped / kSuperseded).
  std::uint64_t candidates_tested = 0;
  /// Skip reason / scan summary for the solver's stage reports.
  std::string note;
};

struct PortfolioResult {
  static constexpr std::size_t kNoRung = static_cast<std::size_t>(-1);

  /// The winning rung's counterexample — always the lowest-rung, lowest-
  /// candidate-index one (raw: the caller verifies before attaching).
  std::optional<Database> counterexample;
  std::size_t winner = kNoRung;
  /// One report per ladder rung, ladder order.
  std::vector<RungReport> rungs;
  /// Total candidates across counted rungs (superseded work excluded).
  std::uint64_t candidates_tested = 0;
  std::uint64_t rungs_scanned = 0;  ///< kFullScan count
  std::uint64_t rungs_skipped = 0;  ///< kSkipped count
  /// The largest (highest-cost) fully scanned shape, when any rung ran to
  /// the end of its space — what an exhausted-note should name instead of
  /// the base shape.
  std::optional<SearchShape> largest_scanned;
};

/// A portfolio of bounded refutation searches over a deterministic shape
/// ladder, raced across a TaskPool.
///
/// The fixed 2x2 search shape misses every counterexample that needs a
/// third tuple or a third value, returning kUnknown with budget to spare.
/// The portfolio instead generates a ladder of shapes growing both axes,
/// cost-orders it by each shape's candidate-space bound
/// (EstimateBoundedSearch), pre-skips rungs whose compiled tables could
/// never fit (hard caps or Budget::bytes — counted in the result, never
/// silent), funds the rungs greedily in ladder order from one Budget
/// (Budget::SplitLadder), and runs the survivors as stealable tasks on the
/// caller's pool — first raw counterexample cancels every *higher* rung
/// through per-rung sticky meters chained under the caller's outer cancel
/// token.
///
/// ## Determinism (the PR 8 two-tier contract)
///
/// Verdict, witness, and per-rung reports are bit-identical to a
/// sequential ladder sweep at every pool width:
///   * each rung's candidate ceiling is fixed up front by SplitLadder, so
///     a rung's scan is a deterministic function of (scheme, sigma,
///     target, shape, share) — no shared interleaved meter;
///   * a find at rung k only cancels rungs *above* k (a smaller shape may
///     still hold the lower-rung witness a sequential sweep would have
///     returned first), so every rung at or below the winner runs
///     uncancelled to its deterministic end;
///   * the reduction on the joining thread takes the lowest-rung find and
///     rewrites every higher rung to kSuperseded with zeroed counters —
///     exactly the report a sequential sweep produces by never launching
///     them.
/// The wall-clock deadline stays stage-granular (rungs are not
/// deadline-gated mid-scan), the same approximation tier as the rest of
/// the parallel engines (docs/parallelism.md).
class RefutationPortfolio {
 public:
  RefutationPortfolio(SchemePtr scheme, std::vector<Dependency> premises,
                      Dependency conclusion, PortfolioOptions options = {});

  /// The cost-ordered shape ladder (base shape first).
  const std::vector<SearchShape>& ladder() const { return ladder_; }

  /// Runs the portfolio under `budget` (steps fund the ladder; bytes gate
  /// feasibility). Error statuses only for invalid inputs. Thread-safe
  /// against concurrent MarkExhausted on the outer cancel token; not
  /// reentrant.
  Result<PortfolioResult> Run(const Budget& budget);

 private:
  SchemePtr scheme_;
  std::vector<Dependency> premises_;
  Dependency conclusion_;
  PortfolioOptions options_;

  std::vector<SearchShape> ladder_;
  /// Per-rung candidate-space bounds (EstimateBoundedSearch), aligned
  /// with ladder_ — the SplitLadder costs and the ladder ordering key.
  std::vector<std::uint64_t> costs_;
};

}  // namespace ccfp

#endif  // CCFP_SEARCH_PORTFOLIO_H_
