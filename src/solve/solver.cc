#include "solve/solver.h"

#include <algorithm>
#include <utility>

#include "chase/chase.h"
#include "chase/ind_chase.h"
#include "core/workspace.h"
#include "fd/closure.h"
#include "ind/special.h"
#include "interact/unary_finite.h"
#include "util/strings.h"

namespace ccfp {

const char* ImplicationFragmentToString(ImplicationFragment fragment) {
  switch (fragment) {
    case ImplicationFragment::kPureFd:
      return "pure-fd";
    case ImplicationFragment::kPureInd:
      return "pure-ind";
    case ImplicationFragment::kUnary:
      return "unary";
    case ImplicationFragment::kMixed:
      return "mixed";
    case ImplicationFragment::kUnsupported:
      return "unsupported";
  }
  return "?";
}

const char* ImplicationSemanticsToString(ImplicationSemantics semantics) {
  switch (semantics) {
    case ImplicationSemantics::kUnrestricted:
      return "unrestricted";
    case ImplicationSemantics::kFinite:
      return "finite";
  }
  return "?";
}

namespace {

/// The sigma-shape facts classification routes on; computed once by the
/// solver constructor and by the free ClassifyImplicationFragment.
struct SigmaFacts {
  bool all_fd = true;
  bool all_ind = true;
  bool all_unary = true;
  bool has_other = false;
};

SigmaFacts ComputeSigmaFacts(const DatabaseScheme& scheme,
                             const std::vector<Dependency>& sigma) {
  SigmaFacts f;
  for (const Dependency& dep : sigma) {
    if (IsTrivial(scheme, dep)) continue;
    switch (dep.kind()) {
      case DependencyKind::kFd:
        f.all_ind = false;
        // Empty-lhs (constant-column) FDs re-introduce FD/IND interaction
        // and fall out of the unary fragment here too: 0 != 1.
        if (dep.fd().lhs.size() != 1 || dep.fd().rhs.size() != 1) {
          f.all_unary = false;
        }
        break;
      case DependencyKind::kInd:
        f.all_fd = false;
        if (dep.ind().width() != 1) f.all_unary = false;
        break;
      case DependencyKind::kRd:
        f.all_fd = false;
        f.all_ind = false;
        f.all_unary = false;
        break;
      default:
        f.has_other = true;
        break;
    }
  }
  return f;
}

ImplicationFragment ClassifyWithFacts(const SigmaFacts& f,
                                      const Dependency& target) {
  if (f.has_other || target.is_emvd() || target.is_mvd()) {
    return ImplicationFragment::kUnsupported;
  }
  if (target.is_fd() && f.all_fd) return ImplicationFragment::kPureFd;
  if (target.is_ind() && f.all_ind) return ImplicationFragment::kPureInd;
  bool unary_target =
      (target.is_fd() && target.fd().lhs.size() == 1 &&
       target.fd().rhs.size() == 1) ||
      (target.is_ind() && target.ind().width() == 1);
  if (unary_target && f.all_unary) {
    return ImplicationFragment::kUnary;
  }
  return ImplicationFragment::kMixed;
}

/// The pure-FD counterexample: two tuples over the target's relation that
/// agree exactly on the closure of the target's lhs (the Armstrong-style
/// two-tuple argument — any sigma FD whose lhs is inside the closure has
/// its rhs inside it too, so it holds; the target's rhs escapes it).
/// `closure` must be sorted (AttributeClosure returns it sorted).
Database FdCounterexample(SchemePtr scheme, const Fd& target,
                          const std::vector<AttrId>& closure) {
  Database db(scheme);
  std::size_t arity = scheme->relation(target.rel).arity();
  Tuple t1(arity), t2(arity);
  for (AttrId a = 0; a < arity; ++a) {
    bool shared = std::binary_search(closure.begin(), closure.end(), a);
    t1[a] = Value::Int(static_cast<std::int64_t>(a));
    t2[a] = shared ? t1[a]
                   : Value::Int(static_cast<std::int64_t>(arity + a));
  }
  db.Insert(target.rel, std::move(t1));
  db.Insert(target.rel, std::move(t2));
  return db;
}

/// Folds a finished stage into the verdict's totals.
void PushStage(Verdict& v, StageReport r) {
  v.used.Add(r.used);
  v.stages.push_back(std::move(r));
}

/// Deadline gate between stages: appends a skipped-stage report and
/// updates the reason when the budget's wall-clock deadline has passed.
bool DeadlineExpired(const Budget& budget, Verdict& v, const char* stage) {
  if (!budget.Expired()) return false;
  StageReport r{stage, "", ImplicationVerdict::kUnknown,
                "skipped: budget deadline passed", {}};
  PushStage(v, std::move(r));
  v.reason = "budget deadline passed before the stages were exhausted";
  return true;
}

}  // namespace

ImplicationFragment ClassifyImplicationFragment(
    const DatabaseScheme& scheme, const std::vector<Dependency>& sigma,
    const Dependency& target) {
  return ClassifyWithFacts(ComputeSigmaFacts(scheme, sigma), target);
}

std::string Verdict::ToString(const DatabaseScheme& scheme) const {
  std::string out =
      StrCat(ImplicationVerdictToString(outcome), "  [fragment: ",
             ImplicationFragmentToString(fragment), ", semantics: ",
             ImplicationSemanticsToString(semantics), "]");
  if (!engine.empty()) out += StrCat("\n  engine: ", engine);
  if (!reason.empty()) out += StrCat("\n  reason: ", reason);
  if (!ind_chain.empty()) {
    out += StrCat("\n  chain:  ",
                  JoinMapped(ind_chain, " -> ", [&](const IndExpression& e) {
                    return e.ToString(scheme);
                  }));
  }
  if (!derivation_trace.empty()) {
    out += StrCat("\n  trace:  ", derivation_trace.size(),
                  " interaction-rule applications");
  }
  if (counterexample.has_value()) {
    out += StrCat("\n  counterexample: ", counterexample->TotalTuples(),
                  " tuples", counterexample_verified ? " (verified)" : "");
  }
  for (const StageReport& r : stages) {
    out += StrCat("\n  stage: ", r.ToString());
  }
  return out;
}

ImplicationSolver::ImplicationSolver(SchemePtr scheme,
                                     std::vector<Dependency> sigma,
                                     SolveOptions options)
    : scheme_(std::move(scheme)),
      sigma_(std::move(sigma)),
      options_(options) {
  for (const Dependency& dep : sigma_) {
    Status st = Validate(*scheme_, dep);
    if (!st.ok()) {
      sigma_valid_ = false;
      sigma_error_ = st.ToString();
      return;
    }
  }
  SigmaFacts facts = ComputeSigmaFacts(*scheme_, sigma_);
  all_fd_ = facts.all_fd;
  all_ind_ = facts.all_ind;
  all_unary_ = facts.all_unary;
  has_other_ = facts.has_other;
  for (const Dependency& dep : sigma_) {
    if (IsTrivial(*scheme_, dep)) continue;
    nontrivial_.push_back(dep);
    if (dep.is_fd()) {
      fds_.push_back(dep.fd());
    } else if (dep.is_ind()) {
      inds_.push_back(dep.ind());
    } else if (dep.is_rd()) {
      rds_.push_back(dep.rd());
    }
  }
  if (options_.shared_witness_cache == nullptr) {
    witness_cache_ = std::make_unique<WitnessCache>(
        scheme_, nontrivial_, options_.use_witness_cache ? 8 : 0);
  }
}

ImplicationFragment ImplicationSolver::Classify(
    const Dependency& target) const {
  SigmaFacts facts;
  facts.all_fd = all_fd_;
  facts.all_ind = all_ind_;
  facts.all_unary = all_unary_;
  facts.has_other = has_other_;
  return ClassifyWithFacts(facts, target);
}

Status ImplicationSolver::ValidateInputs(const Dependency& target) const {
  if (!sigma_valid_) {
    return Status::InvalidArgument(StrCat("invalid sigma: ", sigma_error_));
  }
  return Validate(*scheme_, target);
}

Result<Verdict> ImplicationSolver::Solve(const Dependency& target,
                                         const Budget& budget) {
  CCFP_RETURN_NOT_OK(ValidateInputs(target));
  // The cache's pinned workspaces are live solver state, so they count
  // against the query's byte ceiling like everything else: shrink the
  // cache (coldest witness first) before running the stages under it.
  if (options_.use_witness_cache && budget.bytes != UINT64_MAX) {
    cache().EnforceByteCeiling(budget.bytes);
  }
  Verdict v;
  v.semantics = options_.semantics;
  v.fragment = Classify(target);

  if (IsTrivial(*scheme_, target)) {
    v.outcome = ImplicationVerdict::kImplied;
    v.engine = "trivial";
    PushStage(v, StageReport{"decide", "trivial",
                             ImplicationVerdict::kImplied,
                             "target holds in every database", {}});
    return v;
  }

  switch (v.fragment) {
    case ImplicationFragment::kPureFd:
      SolvePureFd(target, budget, v);
      break;
    case ImplicationFragment::kPureInd:
      SolvePureInd(target, budget, v);
      break;
    case ImplicationFragment::kUnary:
      // The decision engines are exact and cheap; the cache cannot beat
      // them, so it is not consulted for the *verdict* here.
      SolveUnary(target, budget, v);
      break;
    case ImplicationFragment::kMixed:
      if (ProbeWitnessCache(target, v)) break;
      SolveMixed(target, budget, v);
      break;
    case ImplicationFragment::kUnsupported:
      if (ProbeWitnessCache(target, v)) break;
      SolveUnsupported(target, budget, v);
      break;
  }
  if (v.outcome == ImplicationVerdict::kUnknown && v.reason.empty()) {
    v.reason = "every stage exhausted its budget without a verdict";
  }
  return v;
}

bool ImplicationSolver::ProbeWitnessCache(const Dependency& target,
                                          Verdict& v, bool evidence_only) {
  if (!options_.use_witness_cache || cache().size() == 0) {
    return false;
  }
  std::shared_ptr<const Database> hit = cache().Refute(target);
  if (hit == nullptr) return false;
  // The cached database satisfies sigma (verified on admission) and its
  // watcher just confirmed it violates the target — a complete
  // refutation replayed for free, before any engine runs.
  StageReport r{"witness-cache", "witness-cache (replayed refutation)",
                ImplicationVerdict::kNotImplied,
                evidence_only
                    ? "a counterexample from an earlier Solve over this "
                      "sigma replayed as the evidence database"
                    : "a counterexample from an earlier Solve over this "
                      "sigma violates the target",
                {}};
  if (!evidence_only) {
    // The replay *decides* (the exact routes never reach this probe).
    v.outcome = ImplicationVerdict::kNotImplied;
    v.engine = r.engine;
  }
  if (options_.want_counterexample) {
    v.counterexample = *hit;
    v.counterexample_verified = true;
  }
  PushStage(v, std::move(r));
  return true;
}

bool ImplicationSolver::AttachCounterexample(Database db,
                                            const Dependency& target,
                                            Verdict& v,
                                            StageReport& report) {
  // Evidence check through incremental watchers (verify/witness_cache.h):
  // the candidate is interned exactly once into a cache entry, sigma and
  // the target are watched, and — when the cache is enabled — the entry
  // is retained so later Solves over this sigma can replay it. The check
  // always runs — it is what makes a search-found candidate decisive;
  // want_counterexample only controls whether the database itself is
  // handed to the caller.
  bool genuine = cache().Admit(db, target).genuine;
  if (genuine) {
    if (!report.note.empty()) report.note += "; ";
    report.note += "counterexample verified through watchers";
    if (options_.want_counterexample) {
      v.counterexample = std::move(db);
      v.counterexample_verified = true;
    }
  } else {
    // Defensive: a non-genuine candidate indicates an engine bug; report
    // it loudly instead of attaching bad evidence.
    if (!report.note.empty()) report.note += "; ";
    report.note += "candidate counterexample FAILED verification (dropped)";
    if (!v.reason.empty()) v.reason += "; ";
    v.reason += "a candidate counterexample failed verification";
  }
  return genuine;
}

void ImplicationSolver::SolvePureFd(const Dependency& target,
                                    const Budget& budget, Verdict& v) {
  (void)budget;  // attribute closure is linear; no budget axis applies
  const Fd& fd = target.fd();
  StageReport r{"decide", "fd-closure (Beeri-Bernstein)",
                ImplicationVerdict::kUnknown, "", {}};
  std::vector<AttrId> closure =
      AttributeClosure(*scheme_, fd.rel, fds_, fd.lhs);
  v.fd_closure = closure;
  r.used.expressions = closure.size();
  bool implied = true;
  for (AttrId a : fd.rhs) {
    if (!std::binary_search(closure.begin(), closure.end(), a)) {
      implied = false;
      break;
    }
  }
  v.engine = r.engine;
  if (implied) {
    v.outcome = ImplicationVerdict::kImplied;
    r.verdict = ImplicationVerdict::kImplied;
    r.note = "target rhs inside the lhs closure";
  } else {
    v.outcome = ImplicationVerdict::kNotImplied;
    r.verdict = ImplicationVerdict::kNotImplied;
    if (options_.want_counterexample) {
      AttachCounterexample(FdCounterexample(scheme_, fd, closure), target,
                           v, r);
    }
  }
  PushStage(v, std::move(r));
}

void ImplicationSolver::SolvePureInd(const Dependency& target,
                                     const Budget& budget, Verdict& v) {
  const Ind& ind = target.ind();

  // Special-case engines (end of Section 3) when no proof is requested:
  // width-1 queries are digraph reachability, typed queries per-name-set
  // reachability — both polynomial and exact.
  bool all_unary_inds = ind.width() == 1 && all_unary_;
  bool all_typed = IsTypedInd(*scheme_, ind);
  if (all_typed) {
    for (const Ind& member : inds_) {
      if (!IsTypedInd(*scheme_, member)) {
        all_typed = false;
        break;
      }
    }
  }

  StageReport r{"decide", "", ImplicationVerdict::kUnknown, "", {}};
  ImplicationVerdict decided = ImplicationVerdict::kUnknown;
  if (!options_.want_proof && all_unary_inds) {
    UnaryIndGraph graph(scheme_, inds_);
    decided = graph.Implies(ind) ? ImplicationVerdict::kImplied
                                 : ImplicationVerdict::kNotImplied;
    r.engine = "unary-ind-graph (digraph reachability)";
  } else if (!options_.want_proof && all_typed) {
    Result<bool> typed = TypedIndImplies(*scheme_, inds_, ind);
    if (typed.ok()) {
      decided = *typed ? ImplicationVerdict::kImplied
                       : ImplicationVerdict::kNotImplied;
      r.engine = "typed-ind-reachability";
    }
  }
  if (decided == ImplicationVerdict::kUnknown && r.engine.empty()) {
    // The general Corollary 3.2 BFS, with proof extraction on demand.
    r.engine = "ind-bfs (Corollary 3.2)";
    IndImplication engine(scheme_, inds_);
    Result<IndDecision> decision =
        engine.Decide(ind, budget, options_.want_proof);
    if (!decision.ok()) {
      r.note = decision.status().ToString();
      r.used.expressions = budget.expressions;
      v.reason = StrCat("IND expression budget exhausted (",
                        budget.expressions, " expressions)");
      PushStage(v, std::move(r));
      return;
    }
    r.used.expressions = decision->expressions_visited;
    decided = decision->implied ? ImplicationVerdict::kImplied
                                : ImplicationVerdict::kNotImplied;
    if (decision->implied && options_.want_proof) {
      v.ind_chain = decision->chain;
      v.ind_proof = std::move(decision->proof);
      r.note = StrCat("IND1/2/3 proof checked, chain length ",
                      decision->chain_length);
    }
  }

  v.engine = r.engine;
  v.outcome = decided;
  r.verdict = decided;
  bool want_evidence = decided == ImplicationVerdict::kNotImplied &&
                       options_.want_counterexample;
  PushStage(v, std::move(r));
  if (!want_evidence) return;
  if (DeadlineExpired(budget, v, "evidence")) return;

  // Counterexample evidence via the Rule (*) construction (Theorem 3.1):
  // finite and unrestricted implication coincide for INDs, and the
  // saturated Rule (*) database is a finite witness of the failure.
  StageReport e{"evidence", "rule-star-chase (Theorem 3.1)",
                ImplicationVerdict::kNotImplied, "", {}};
  IndChaseOptions copts;
  copts.max_tuples = budget.tuples;
  Result<IndChaseResult> witness =
      IndChaseDecide(scheme_, inds_, ind, copts);
  if (!witness.ok()) {
    e.note = StrCat("no witness within the tuple budget: ",
                    witness.status().ToString());
    v.reason =
        "decision is exact; counterexample construction exceeded the "
        "tuple budget";
  } else if (witness->implied) {
    e.note = "Rule (*) chase disagrees with the BFS decision";
    v.reason = "internal inconsistency between IND engines";
  } else {
    e.used.tuples = witness->tuples_added;
    AttachCounterexample(std::move(witness->db), target, v, e);
  }
  PushStage(v, std::move(e));
}

void ImplicationSolver::SolveUnary(const Dependency& target,
                                   const Budget& budget, Verdict& v) {
  StageReport r{"decide", "", ImplicationVerdict::kUnknown, "", {}};
  bool implied = false;
  if (options_.semantics == ImplicationSemantics::kFinite) {
    r.engine = "unary-finite-counting (KCV rules)";
    UnaryFiniteImplication finite(scheme_, fds_, inds_);
    implied = finite.Implies(target);
  } else {
    r.engine = "unary-non-interaction (KCV)";
    UnaryUnrestrictedImplication engine(scheme_, fds_, inds_);
    implied = engine.Implies(target);
  }
  v.engine = r.engine;
  v.outcome = implied ? ImplicationVerdict::kImplied
                      : ImplicationVerdict::kNotImplied;
  r.verdict = v.outcome;
  bool want_evidence = !implied && options_.want_counterexample;
  if (!implied &&
      options_.semantics == ImplicationSemantics::kUnrestricted &&
      UnaryFiniteImplication(scheme_, fds_, inds_).Implies(target)) {
    // The Theorem 4.4 separation: every counterexample is infinite.
    r.note =
        "finitely implied — only infinite counterexamples exist "
        "(Theorem 4.4)";
    want_evidence = false;
  }
  PushStage(v, std::move(r));
  if (!want_evidence) return;
  // A verified counterexample from an earlier Solve over this sigma may
  // already violate the target — replaying it is free, the garnish search
  // below is not. The outcome/engine are already decided (the counting
  // engines are exact); the replay only supplies the evidence database.
  if (ProbeWitnessCache(target, v, /*evidence_only=*/true)) return;
  if (DeadlineExpired(budget, v, "evidence")) return;
  // Best-effort finite witness (|=fin also fails, so one exists — though
  // possibly above the bounded-search ladder). The decision is already
  // exact, so this garnish gets a small slice: a full scan that finds
  // nothing would buy nothing.
  SearchStage(target, budget.Split(options_.evidence_garnish_split), v);
}

void ImplicationSolver::SolveMixed(const Dependency& target,
                                   const Budget& budget, Verdict& v) {
  Budget slice = budget.Split(options_.mixed_stage_split);
  std::vector<std::string> unknown_notes;
  if (DeadlineExpired(budget, v, "derivation")) return;

  // --- Stage 1: sound interaction rules (necessarily incomplete) --------
  {
    StageReport r{"derivation", "mixed-derivation (Props 4.1-4.3)",
                  ImplicationVerdict::kUnknown, "", {}};
    MixedDerivation derivation(scheme_, nontrivial_,
                               MixedDerivation::Options::FromBudget(slice));
    Status st = derivation.Saturate();
    r.used.expressions = derivation.dependency_count();
    if (st.ok() && derivation.Derives(target)) {
      r.verdict = ImplicationVerdict::kImplied;
      v.outcome = ImplicationVerdict::kImplied;
      v.engine = r.engine;
      if (options_.want_proof) v.derivation_trace = derivation.trace();
      r.note = StrCat(derivation.trace().size(),
                      " interaction-rule applications");
      PushStage(v, std::move(r));
      return;
    }
    r.note = st.ok() ? "target not derivable by the sound rules"
                     : st.ToString();
    unknown_notes.push_back(StrCat("derivation: ", r.note));
    PushStage(v, std::move(r));
  }
  if (DeadlineExpired(budget, v, "chase")) return;

  // --- Stages 2+3: chase proof and bounded refutation search ------------
  // With a pool, the two probes race (first decisive verdict wins, the
  // loser is cancelled); otherwise they run in pipeline order. Verdicts
  // and evidence are identical either way — see SolveOptions::pool.
  bool raced = false;
  std::string search_summary;
  if (options_.pool != nullptr && rds_.empty()) {
    raced = SolveMixedRaced(target, slice, unknown_notes, search_summary, v);
    if (raced && v.outcome != ImplicationVerdict::kUnknown) return;
  }
  if (!raced) {
    // --- Stage 2: budgeted chase proof (universal model) ----------------
    if (!rds_.empty()) {
      StageReport r{"chase", "", ImplicationVerdict::kUnknown,
                    "skipped: RD hypotheses are outside the chase's rule "
                    "arsenal",
                    {}};
      unknown_notes.push_back("chase: skipped (RD hypotheses)");
      PushStage(v, std::move(r));
    } else {
      Result<Database> seed = MakeCanonicalSeed(scheme_, target);
      if (!seed.ok()) {
        StageReport r{"chase", "workspace-chase (universal model)",
                      ImplicationVerdict::kUnknown,
                      seed.status().ToString(),
                      {}};
        unknown_notes.push_back(StrCat("chase: ", r.note));
        PushStage(v, std::move(r));
      } else {
        // One workspace carries the chase and — on refutation — the
        // evidence check: the fixpoint is verified in id-space without
        // re-interning, then materialized once for the caller.
        InternedWorkspace ws(scheme_);
        ws.AppendDatabase(*seed);
        WorkspaceChase chase(&ws, fds_, inds_);
        Result<WorkspaceChaseStats> run =
            chase.Run(ChaseOptions::FromBudget(slice));
        if (FinishChase(target, slice, ws, run, unknown_notes, v)) return;
      }
    }
    if (DeadlineExpired(budget, v, "search")) return;

    // --- Stage 3: bounded refutation portfolio --------------------------
    search_summary = SearchStage(target, slice, v);
  }
  if (v.outcome == ImplicationVerdict::kUnknown) {
    unknown_notes.push_back(
        StrCat("search: ", search_summary.empty()
                               ? "no counterexample within the bound"
                               : search_summary));
    v.reason = StrCat("undecidable fragment — ",
                      JoinStrings(unknown_notes, "; "));
  }
}

bool ImplicationSolver::SolveMixedRaced(const Dependency& target,
                                        const Budget& slice,
                                        std::vector<std::string>& unknown_notes,
                                        std::string& search_summary,
                                        Verdict& v) {
  Result<Database> seed = MakeCanonicalSeed(scheme_, target);
  if (!seed.ok()) return false;  // the sequential path reports the failure

  // Sticky first-verdict-wins flag (never charged, only marked): the
  // chase becoming decisive kills the whole refutation portfolio — every
  // rung's meter chains under this token. The chase itself is never
  // cancelled — whether it converges within its budget share must not
  // depend on timing, or verdicts would differ run to run.
  Budget unmetered;
  unmetered.deadline.reset();
  SharedBudgetMeter cancel(unmetered, UINT64_MAX);

  InternedWorkspace ws(scheme_);
  ws.AppendDatabase(*seed);
  WorkspaceChase chase(&ws, fds_, inds_);
  ChaseOptions chase_options = ChaseOptions::FromBudget(slice);

  RefutationPortfolio portfolio(scheme_, nontrivial_, target,
                                MakePortfolioOptions(&cancel));

  std::optional<Result<WorkspaceChaseStats>> chase_run;
  std::optional<Result<PortfolioResult>> portfolio_run;
  {
    // The chase becomes one more stealable task beside the portfolio's
    // rungs: one Solve occupies the pool with chase ∥ rung0 ∥ rung1 ∥ ...
    // The portfolio runs on this thread and its Wait helps execute any
    // queued task (including the chase), so a width-1 pool still makes
    // progress — it just serializes.
    TaskGroup group(options_.pool);
    group.Spawn([&] {
      chase_run.emplace(chase.Run(chase_options));
      if (chase_run->ok() &&
          (*chase_run)->outcome == ChaseOutcome::kFixpoint) {
        // Decisive either way (the fixpoint proves or refutes): the
        // portfolio's answer is moot, stop paying for it.
        cancel.MarkExhausted();
      }
    });
    portfolio_run.emplace(portfolio.Run(slice));
    group.Wait();
  }

  // Deterministic reduction on the joining thread, chase first — exactly
  // the sequential stage order, so stage reports, evidence, and witness-
  // cache traffic match the pipeline bit for bit. All cache interaction
  // happens below, never inside the tasks. A decisive chase discards the
  // portfolio result entirely: its (possibly cancellation-truncated,
  // timing-dependent) rung counters never surface.
  if (FinishChase(target, slice, ws, *chase_run, unknown_notes, v)) {
    return true;
  }
  search_summary = FinishPortfolio(target, std::move(*portfolio_run), v);
  return true;
}

bool ImplicationSolver::FinishChase(const Dependency& target,
                                    const Budget& slice,
                                    InternedWorkspace& ws,
                                    const Result<WorkspaceChaseStats>& run,
                                    std::vector<std::string>& unknown_notes,
                                    Verdict& v) {
  StageReport r{"chase", "workspace-chase (universal model)",
                ImplicationVerdict::kUnknown, "", {}};
  if (!run.ok()) {
    r.note = run.status().ToString();
    r.used.steps = slice.steps;
    unknown_notes.push_back(StrCat("chase: ", r.note));
    PushStage(v, std::move(r));
    return false;
  }
  if (run->outcome == ChaseOutcome::kFailed) {
    r.note = "chase failed from an all-null seed (engine bug)";
    unknown_notes.push_back(StrCat("chase: ", r.note));
    PushStage(v, std::move(r));
    return false;
  }
  r.used.steps = run->steps;
  r.used.tuples = run->ind_tuples;
  v.chase_stats = *run;
  bool holds = ws.Satisfies(target);
  v.engine = r.engine;
  if (holds) {
    v.outcome = ImplicationVerdict::kImplied;
    r.verdict = ImplicationVerdict::kImplied;
    r.note = "target holds in the chased fixpoint";
    PushStage(v, std::move(r));
    return true;
  }
  v.outcome = ImplicationVerdict::kNotImplied;
  r.verdict = ImplicationVerdict::kNotImplied;
  if (options_.use_witness_cache) {
    // The fixpoint satisfies sigma by construction; verify it through
    // watchers and hand it to the witness cache so later Solves over
    // this sigma can replay the refutation.
    Database fixpoint = ws.Materialize();
    bool genuine = cache().Admit(fixpoint, target).genuine;
    if (genuine) {
      if (options_.want_counterexample) {
        v.counterexample = std::move(fixpoint);
        v.counterexample_verified = true;
      }
      r.note = "chased fixpoint is the counterexample (verified "
               "through watchers)";
    } else {
      r.note = "fixpoint failed its sigma re-check (engine bug)";
    }
  } else if (options_.want_counterexample) {
    // Cache off: verify in id-space on the chase's own workspace
    // (nothing re-interned).
    bool genuine = !ws.Satisfies(target) && ws.SatisfiesAll(nontrivial_);
    if (genuine) {
      v.counterexample = ws.Materialize();
      v.counterexample_verified = true;
      r.note = "chased fixpoint is the counterexample (verified "
               "in-workspace)";
    } else {
      r.note = "fixpoint failed its sigma re-check (engine bug)";
    }
  }
  PushStage(v, std::move(r));
  return true;
}

void ImplicationSolver::SolveUnsupported(const Dependency& target,
                                         const Budget& budget, Verdict& v) {
  std::string summary = SearchStage(target, budget, v);
  if (v.outcome == ImplicationVerdict::kUnknown) {
    v.reason = StrCat(
        "no exact engine covers EMVD/MVD sentences; bounded search found ",
        summary.empty() ? std::string("no counterexample within the bound")
                        : summary);
  }
}

PortfolioOptions ImplicationSolver::MakePortfolioOptions(
    SharedBudgetMeter* cancel) {
  PortfolioOptions opts;
  opts.base.max_tuples_per_relation = options_.search_max_tuples_per_relation;
  opts.base.domain_size = options_.search_domain_size;
  opts.tuple_growth = options_.search_tuple_growth;
  opts.domain_growth = options_.search_domain_growth;
  opts.max_rungs = options_.search_max_rungs;
  opts.workspace = options_.shared_search_tables != nullptr
                       ? options_.shared_search_tables
                       : &search_ws_;
  opts.pool = options_.pool;
  opts.cancel = cancel;
  return opts;
}

std::string ImplicationSolver::SearchStage(const Dependency& target,
                                           const Budget& budget, Verdict& v) {
  RefutationPortfolio portfolio(scheme_, nontrivial_, target,
                                MakePortfolioOptions(nullptr));
  return FinishPortfolio(target, portfolio.Run(budget), v);
}

std::string ImplicationSolver::FinishPortfolio(const Dependency& target,
                                               Result<PortfolioResult> run,
                                               Verdict& v) {
  if (!run.ok()) {
    StageReport r{"search", "bounded-search (portfolio)",
                  ImplicationVerdict::kUnknown, run.status().ToString(), {}};
    PushStage(v, std::move(r));
    return run.status().ToString();
  }
  PortfolioResult& result = *run;
  // One stage report per ladder rung, ladder (cost) order. Skipped and
  // superseded rungs keep the empty-engine "skipped" convention; ran rungs
  // carry their candidate consumption in used.steps.
  for (std::size_t i = 0; i < result.rungs.size(); ++i) {
    RungReport& rung = result.rungs[i];
    bool ran = rung.status == RungStatus::kFullScan ||
               rung.status == RungStatus::kBudget ||
               rung.status == RungStatus::kFound;
    StageReport r{"search", ran ? "bounded-search (id-space)" : "",
                  ImplicationVerdict::kUnknown, std::move(rung.note), {}};
    r.used.steps = rung.candidates_tested;
    if (i == result.winner && result.counterexample.has_value()) {
      bool undecided = v.outcome == ImplicationVerdict::kUnknown;
      bool genuine = AttachCounterexample(
          std::move(*result.counterexample), target, v, r);
      if (genuine) {
        r.verdict = ImplicationVerdict::kNotImplied;
        if (undecided) {
          v.outcome = ImplicationVerdict::kNotImplied;
          if (v.engine.empty()) v.engine = r.engine;
        }
      }
    }
    PushStage(v, std::move(r));
  }
  if (v.outcome == ImplicationVerdict::kNotImplied) return "";
  // Not decisive: summarize the sweep for the caller's unknown notes,
  // naming the largest fully scanned shape (the strongest exhaustion fact
  // the ladder established) and every rung that could not run.
  std::string summary =
      result.largest_scanned.has_value()
          ? StrCat("no counterexample with <= ",
                   result.largest_scanned->ToString())
          : "candidate budget exhausted before any shape was fully scanned";
  if (result.rungs_skipped > 0) {
    summary += StrCat(" (", result.rungs_skipped, " of ", result.rungs.size(),
                      " ladder rungs skipped)");
  }
  return summary;
}

Result<Verdict> SolveImplication(SchemePtr scheme,
                                 std::vector<Dependency> sigma,
                                 const Dependency& target,
                                 const Budget& budget,
                                 SolveOptions options) {
  ImplicationSolver solver(std::move(scheme), std::move(sigma), options);
  return solver.Solve(target, budget);
}

}  // namespace ccfp
