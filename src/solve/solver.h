#ifndef CCFP_SOLVE_SOLVER_H_
#define CCFP_SOLVE_SOLVER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <memory>

#include "chase/workspace_chase.h"
#include "core/database.h"
#include "core/dependency.h"
#include "core/schema.h"
#include "core/verdict.h"
#include "ind/implication.h"
#include "interact/derivation.h"
#include "search/bounded.h"
#include "search/portfolio.h"
#include "util/budget.h"
#include "util/status.h"
#include "util/task_pool.h"
#include "verify/witness_cache.h"

namespace ccfp {

/// The implication problem for FDs and INDs splinters by fragment — the
/// paper's core story. Each fragment has its own decision procedure with
/// its own complexity:
enum class ImplicationFragment : std::uint8_t {
  /// FD sigma, FD target: attribute closure (fd/closure.h), linear time,
  /// always exact (Section 3's contrast case).
  kPureFd = 0,
  /// IND sigma, IND target: the Corollary 3.2 expression graph
  /// (ind/implication.h), PSPACE-complete in general with polynomial
  /// special cases (unary -> digraph reachability, typed -> per-name-set
  /// reachability; ind/special.h).
  kPureInd = 1,
  /// Unary FDs + unary INDs, unary target: exact engines both ways —
  /// the KCV counting closure for |=fin, non-interaction for |=
  /// (interact/unary_finite.h; Theorem 4.4 lives exactly here).
  kUnary = 2,
  /// Mixed FDs + INDs (+ RDs): undecidable in general (Mitchell;
  /// Chandra-Vardi), no complete k-ary rule system (Theorem 7.1). Solved
  /// by a staged pipeline: sound derivation rules, then a budgeted chase
  /// proof, then bounded counterexample search — any stage may be
  /// decisive, or all may exhaust their budget (kUnknown).
  kMixed = 3,
  /// EMVD/MVD sentences anywhere in the query: no exact engine; only
  /// bounded refutation search applies.
  kUnsupported = 4,
};

const char* ImplicationFragmentToString(ImplicationFragment fragment);

/// Classifies the (sigma, target) query into the fragment the solver will
/// route it to. Trivial members of sigma are ignored. Exposed so tests and
/// benches can assert the routing.
ImplicationFragment ClassifyImplicationFragment(
    const DatabaseScheme& scheme, const std::vector<Dependency>& sigma,
    const Dependency& target);

/// Which implication relation to decide. They coincide for pure FDs, pure
/// INDs (Theorem 3.1), and whenever |= answers kImplied (|= implies
/// |=fin); they differ on the unary fragment (Theorem 4.4).
enum class ImplicationSemantics : std::uint8_t {
  kUnrestricted = 0,  ///< |= over arbitrary (possibly infinite) databases
  kFinite = 1,        ///< |=fin over finite databases
};

const char* ImplicationSemanticsToString(ImplicationSemantics semantics);

struct SolveOptions {
  ImplicationSemantics semantics = ImplicationSemantics::kUnrestricted;
  /// Attach proof evidence (IND1/2/3 proof objects, derivation traces).
  bool want_proof = true;
  /// Attach (and verify) concrete counterexample databases.
  bool want_counterexample = true;
  /// Base shape of the refutation search space (these describe which
  /// databases are enumerated, not a resource budget — Budget::steps caps
  /// the scan). The base shape is rung 0 of the search ladder below: it is
  /// always fully funded first, so shrinking the ladder knobs to 0 recovers
  /// the classic fixed-shape search exactly.
  std::size_t search_max_tuples_per_relation = 2;
  std::size_t search_domain_size = 2;
  /// Refutation-ladder growth (search/portfolio.h): every refutation sweep
  /// runs a cost-ordered portfolio of shapes growing each axis up to
  /// base + growth, so counterexamples needing a third tuple or a third
  /// value — invisible to the fixed base shape — are found whenever the
  /// candidate budget stretches past rung 0. `search_max_rungs` truncates
  /// the cost-ordered ladder (cheapest shapes kept; 1 = fixed shape).
  std::size_t search_tuple_growth = 2;
  std::size_t search_domain_growth = 2;
  std::size_t search_max_rungs = 6;
  /// Denominator of the budget slice the unary route's best-effort
  /// evidence search gets (the decision there is already exact; a garnish
  /// witness hunt must not eat the query budget). 1 = the whole budget.
  unsigned evidence_garnish_split = 8;
  /// Number of equal Budget::Split shares the mixed pipeline hands its
  /// stages (derivation, chase, search each draw one share, so the
  /// pipeline never overspends the query budget ~3x). Raising it starves
  /// every stage equally; 1 lets each stage see the full budget.
  unsigned mixed_stage_split = 3;
  /// Replay verified counterexample databases from earlier Solve calls
  /// against later targets over the same sigma *before any engine runs*
  /// (verify/witness_cache.h). Only the inexact routes (unary evidence,
  /// mixed, unsupported) consult the cache — the linear exact engines
  /// produce richer evidence than a replay would. Refutations from every
  /// route feed it. Off => counterexamples are still verified through
  /// one-shot watchers, just not retained.
  bool use_witness_cache = true;

  /// --- shared-substrate hooks (service/shared_core.h) -----------------
  /// All non-owned and optional; null means the solver provisions its own
  /// private state (the classic standalone behavior).

  /// Cache shared across solvers over the *same sigma* (thread-safe; the
  /// caller guarantees the sigma match — the service keys cores by
  /// scheme+sigma identity). When set, the solver allocates no private
  /// cache: replays, admissions, and evidence checks all go through the
  /// shared one. Note shared replay makes *evidence* (which cached
  /// witness answers first) dependent on sibling-session history; callers
  /// that need bit-reproducible evidence keep this null.
  WitnessCache* shared_witness_cache = nullptr;
  /// Compiled search key tables shared across solvers over the *same
  /// scheme* (thread-safe). When set, the per-solver table cache is
  /// bypassed — the Nth session's searches compile nothing.
  BoundedSearchWorkspace* shared_search_tables = nullptr;
  /// When set, every refutation sweep fans its ladder rungs out as
  /// stealable tasks on this pool, and the mixed route additionally races
  /// its chase proof probe against the whole portfolio (one Solve then
  /// occupies the pool with chase ∥ rung0 ∥ rung1 ∥ ... — first decisive
  /// verdict wins; losers are cancelled through chained sticky meters).
  /// Verdicts and evidence are identical to the sequential pipeline at
  /// every pool width: the chase is never cancelled (its convergence
  /// within its budget share cannot depend on timing), a decisive chase
  /// cancels the portfolio and discards its result (sequentially the
  /// search would never have run), a find at one rung only cancels the
  /// rungs above it, and the surviving results are reduced on the joining
  /// thread in ladder order (see search/portfolio.h for the full
  /// determinism argument).
  TaskPool* pool = nullptr;
};

/// The three-valued answer of one Solve call, with checkable evidence:
///   * kImplied    — a proof artifact: the FD closure, an IND1/2/3 proof
///                   (already Check()ed by the rule system), a sound-rule
///                   derivation trace, or chase counters (the universal-
///                   model argument);
///   * kNotImplied — a concrete counterexample database satisfying sigma
///                   and violating the target, verified by Satisfies on an
///                   interned substrate before being attached (exact
///                   engines may answer kNotImplied with no database when
///                   none needs to exist — see `reason`);
///   * kUnknown    — never a shrug: `reason` plus one StageReport per
///                   stage tried, each with its own budget consumption.
struct Verdict {
  ImplicationVerdict outcome = ImplicationVerdict::kUnknown;
  ImplicationFragment fragment = ImplicationFragment::kMixed;
  ImplicationSemantics semantics = ImplicationSemantics::kUnrestricted;
  /// The engine that produced the decisive answer (empty for kUnknown).
  std::string engine;
  /// Structured explanation: why kUnknown, or evidence caveats.
  std::string reason;

  /// --- kImplied evidence (whichever the deciding engine produces) -----
  /// Pure-FD route: the attribute closure of the target's lhs (sorted);
  /// the target holds iff its rhs is contained in it.
  std::vector<AttrId> fd_closure;
  /// Pure-IND route: the Corollary 3.2 witnessing expression chain and
  /// the IND1/2/3 proof object (proof.Check() has passed).
  std::vector<IndExpression> ind_chain;
  std::optional<IndProof> ind_proof;
  /// Mixed route, derivation stage: the interaction-rule applications.
  std::vector<MixedDerivation::Step> derivation_trace;
  /// Mixed route, chase stage: the chase counters of the universal-model
  /// proof (also populated when the chase refutes).
  std::optional<WorkspaceChaseStats> chase_stats;

  /// --- kNotImplied evidence -------------------------------------------
  /// A finite database satisfying every (non-trivial) member of sigma and
  /// violating the target.
  std::optional<Database> counterexample;
  /// True iff the attached counterexample re-checked against sigma and
  /// the target on an interned substrate. Always true when a
  /// counterexample is attached (failed verification drops the database
  /// and notes it in `reason`).
  bool counterexample_verified = false;

  /// --- bookkeeping ----------------------------------------------------
  std::vector<StageReport> stages;
  BudgetUse used;  ///< total across stages

  bool implied() const { return outcome == ImplicationVerdict::kImplied; }
  bool not_implied() const {
    return outcome == ImplicationVerdict::kNotImplied;
  }
  bool unknown() const { return outcome == ImplicationVerdict::kUnknown; }

  /// Multi-line human-readable rendering (outcome, route, stages).
  std::string ToString(const DatabaseScheme& scheme) const;
};

/// The one front door for implication queries over FDs, INDs, and RDs:
///
///   ImplicationSolver solver(scheme, sigma);
///   Verdict v = solver.Solve(target, Budget()).value();
///
/// The solver classifies the query fragment and routes it to the exact
/// engine when one exists (pure FD / pure IND / unary / typed); mixed
/// queries run the staged pipeline (sound derivation rules ->
/// workspace-chase proof -> bounded counterexample search), every stage
/// drawing on one Budget via Split(). One InternedWorkspace carries the
/// chase stage *and* its evidence check, so a chase-refuting fixpoint is
/// verified without re-interning a single value; a
/// BoundedSearchWorkspace persists across Solve calls so repeated
/// searches over the scheme reuse their compiled key tables.
///
/// Statuses are reserved for invalid inputs; budget exhaustion is the
/// kUnknown verdict (with per-stage reports), never an error and never an
/// abort.
class ImplicationSolver {
 public:
  /// Validates sigma against the scheme; invalid members are an
  /// InvalidArgument on the first Solve (the constructor never aborts).
  ImplicationSolver(SchemePtr scheme, std::vector<Dependency> sigma,
                    SolveOptions options = {});

  const DatabaseScheme& scheme() const { return *scheme_; }
  const std::vector<Dependency>& sigma() const { return sigma_; }
  const SolveOptions& options() const { return options_; }

  /// Decides sigma |= target (or |=fin, per options) within `budget`.
  /// Error statuses only for invalid inputs.
  Result<Verdict> Solve(const Dependency& target,
                        const Budget& budget = Budget());

  /// The fragment Solve would route `target` to.
  ImplicationFragment Classify(const Dependency& target) const;

 private:
  Status ValidateInputs(const Dependency& target) const;
  void SolvePureFd(const Dependency& target, const Budget& budget,
                   Verdict& v);
  void SolvePureInd(const Dependency& target, const Budget& budget,
                    Verdict& v);
  void SolveUnary(const Dependency& target, const Budget& budget,
                  Verdict& v);
  void SolveMixed(const Dependency& target, const Budget& budget,
                  Verdict& v);
  void SolveUnsupported(const Dependency& target, const Budget& budget,
                        Verdict& v);
  /// The refutation stage shared by the mixed and unsupported routes (and
  /// the unary best-effort evidence pass): the shape-ladder portfolio
  /// (search/portfolio.h) under `budget`, on options_.pool when set.
  /// Decisive iff some rung finds (and the watchers verify) a
  /// counterexample. Returns the not-decisive summary for the caller's
  /// unknown notes — naming the largest fully scanned shape and the
  /// skipped-rung counts — or "" when decisive.
  std::string SearchStage(const Dependency& target, const Budget& budget,
                          Verdict& v);
  /// Stages 2+3 of the mixed route raced on options_.pool: the chase
  /// probe against the whole refutation portfolio (see SolveOptions::pool).
  /// Returns false when the race could not start (no canonical seed) —
  /// the sequential path then reports the failure. `search_summary`
  /// receives the portfolio's not-decisive summary (as SearchStage).
  bool SolveMixedRaced(const Dependency& target, const Budget& slice,
                       std::vector<std::string>& unknown_notes,
                       std::string& search_summary, Verdict& v);
  /// Folds a finished chase probe into the verdict (the shared tail of
  /// the sequential and raced stage 2). True iff decisive.
  bool FinishChase(const Dependency& target, const Budget& slice,
                   InternedWorkspace& ws,
                   const Result<WorkspaceChaseStats>& run,
                   std::vector<std::string>& unknown_notes, Verdict& v);
  /// Folds a finished portfolio run into the verdict (the shared tail of
  /// SearchStage and the raced stage 3): one "search" stage report per
  /// ladder rung, the winning counterexample verified through watchers.
  /// Returns the not-decisive summary ("" when decisive) like SearchStage.
  std::string FinishPortfolio(const Dependency& target,
                              Result<PortfolioResult> run, Verdict& v);
  /// The portfolio options every refutation sweep uses (shape-ladder knobs
  /// + the effective compiled-table cache + the solver's pool). `cancel`
  /// chains every rung under an outer race token (may be null).
  PortfolioOptions MakePortfolioOptions(SharedBudgetMeter* cancel);
  /// Tries to answer kNotImplied from the witness cache (a database from
  /// an earlier Solve that satisfies sigma and violates `target`). On a
  /// hit fills the verdict (stage "witness-cache") and returns true.
  /// With `evidence_only`, the verdict outcome/engine are already decided
  /// (the unary route's exact refutation): a hit only attaches the
  /// replayed database as the counterexample evidence.
  bool ProbeWitnessCache(const Dependency& target, Verdict& v,
                         bool evidence_only = false);
  /// Verifies `db` against sigma and the target through incremental
  /// watchers (and offers it to the witness cache for later Solves).
  /// Returns true iff genuine; attaches the database to `v` only when
  /// `want_counterexample` is also set (verification alone decides the
  /// verdict — evidence attachment is optional).
  bool AttachCounterexample(Database db, const Dependency& target,
                            Verdict& v, StageReport& report);

  SchemePtr scheme_;
  std::vector<Dependency> sigma_;
  SolveOptions options_;

  /// Derived views of sigma (trivial members filtered out).
  std::vector<Dependency> nontrivial_;
  std::vector<Fd> fds_;
  std::vector<Ind> inds_;
  std::vector<Rd> rds_;
  /// Sigma-shape facts for fragment routing, computed once:
  bool all_fd_ = true;             ///< only FDs among the non-trivial
  bool all_ind_ = true;            ///< only INDs among the non-trivial
  bool all_unary_ = true;          ///< every FD/IND unary (1 -> 1 / width 1)
  bool has_other_ = false;         ///< non-trivial EMVD/MVD present
  bool sigma_valid_ = true;
  std::string sigma_error_;

  /// Compiled-table cache shared by every refutation search this solver
  /// runs (the scheme is fixed, so the tables are reusable by contract).
  /// Bypassed when options_.shared_search_tables is set.
  BoundedSearchWorkspace search_ws_;
  /// Verified counterexamples from earlier Solves, replayed against later
  /// targets over the same sigma (capacity 0 when use_witness_cache is
  /// off — it then only serves as the watcher-based evidence checker).
  /// Null when options_.shared_witness_cache supplies the cache instead.
  std::unique_ptr<WitnessCache> witness_cache_;

  /// The effective witness cache (shared when provided, else private).
  WitnessCache& cache() {
    return options_.shared_witness_cache != nullptr
               ? *options_.shared_witness_cache
               : *witness_cache_;
  }
};

/// One-shot façade over a temporary solver:
/// Solve(scheme, sigma, target, budget).
Result<Verdict> SolveImplication(SchemePtr scheme,
                                 std::vector<Dependency> sigma,
                                 const Dependency& target,
                                 const Budget& budget = Budget(),
                                 SolveOptions options = {});

}  // namespace ccfp

#endif  // CCFP_SOLVE_SOLVER_H_
