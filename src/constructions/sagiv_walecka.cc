#include "constructions/sagiv_walecka.h"

#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

std::vector<Dependency> SagivWaleckaConstruction::SigmaDeps() const {
  std::vector<Dependency> deps;
  deps.reserve(sigma.size());
  for (const Emvd& e : sigma) deps.push_back(Dependency(e));
  return deps;
}

SagivWaleckaConstruction MakeSagivWalecka(std::size_t k) {
  CCFP_CHECK_MSG(k >= 1, "Sagiv-Walecka needs k >= 1");
  SagivWaleckaConstruction c;
  c.k = k;

  std::vector<std::string> attrs;
  for (std::size_t i = 1; i <= k + 1; ++i) attrs.push_back(StrCat("A", i));
  attrs.push_back("B");
  c.scheme = MakeScheme({{"R", attrs}});

  // A_i ->> A_{i+1} | B for i = 1..k, plus A_{k+1} ->> A_1 | B.
  for (std::size_t i = 1; i <= k; ++i) {
    c.sigma.push_back(MakeEmvd(*c.scheme, "R", {StrCat("A", i)},
                               {StrCat("A", i + 1)}, {"B"}));
  }
  c.sigma.push_back(
      MakeEmvd(*c.scheme, "R", {StrCat("A", k + 1)}, {"A1"}, {"B"}));

  c.target =
      MakeEmvd(*c.scheme, "R", {"A1"}, {StrCat("A", k + 1)}, {"B"});
  return c;
}

}  // namespace ccfp
