#include "constructions/theorem44.h"

#include "core/tuple.h"

namespace ccfp {

Theorem44Gadget MakeTheorem44Gadget() {
  Theorem44Gadget gadget;
  gadget.scheme = MakeScheme({{"R", {"A", "B"}}});
  gadget.fd = MakeFd(*gadget.scheme, "R", {"A"}, {"B"});
  gadget.ind = MakeInd(*gadget.scheme, "R", {"A"}, "R", {"B"});
  gadget.ind_conclusion = MakeInd(*gadget.scheme, "R", {"B"}, "R", {"A"});
  gadget.fd_conclusion = MakeFd(*gadget.scheme, "R", {"B"}, {"A"});
  return gadget;
}

Database Figure41Prefix(const Theorem44Gadget& gadget, std::size_t n) {
  Database db(gadget.scheme);
  for (std::size_t i = 0; i < n; ++i) {
    db.Insert(0, TupleOfInts({static_cast<std::int64_t>(i + 1),
                              static_cast<std::int64_t>(i)}));
  }
  return db;
}

Database Figure42Prefix(const Theorem44Gadget& gadget, std::size_t n) {
  Database db(gadget.scheme);
  if (n > 0) db.Insert(0, TupleOfInts({1, 1}));
  for (std::size_t i = 1; i < n; ++i) {
    db.Insert(0, TupleOfInts({static_cast<std::int64_t>(i + 1),
                              static_cast<std::int64_t>(i)}));
  }
  return db;
}

InfiniteWitnessReport Figure41Witness() {
  InfiniteWitnessReport report;
  // r = {(i+1, i) : i >= 0}. Closed-form column sets: r[A] = {1, 2, ...},
  // r[B] = {0, 1, ...}.
  report.obeys_fd = true;   // A entries are pairwise distinct.
  report.obeys_ind = true;  // {1,2,...} is a subset of {0,1,...}.
  report.obeys_ind_conclusion = false;  // 0 in r[B] but 0 not in r[A].
  report.obeys_fd_conclusion = true;    // B entries are pairwise distinct.
  report.explanation =
      "r = {(i+1, i) : i >= 0}: r[A] = {1,2,...} and r[B] = {0,1,...}. "
      "The FD R: A -> B holds (first components distinct), the IND "
      "R[A] <= R[B] holds ({1,2,...} is contained in {0,1,...}), but "
      "R[B] <= R[A] fails at the witness 0. Hence Sigma does not "
      "(unrestrictedly) imply R[B] <= R[A], although it finitely does "
      "(Theorem 4.4(a) counting argument).";
  return report;
}

InfiniteWitnessReport Figure42Witness() {
  InfiniteWitnessReport report;
  // r = {(1,1)} u {(i+1, i) : i >= 1}.
  report.obeys_fd = true;   // A entries 1, 2, 3, ... pairwise distinct.
  report.obeys_ind = true;  // r[A] = {1,2,...} = r[B].
  report.obeys_ind_conclusion = true;   // the two column sets are equal.
  report.obeys_fd_conclusion = false;   // (1,1) and (2,1) share B = 1.
  report.explanation =
      "r = {(1,1)} u {(i+1, i) : i >= 1}: r[A] = r[B] = {1,2,...}. "
      "Sigma holds, but the FD R: B -> A fails on the tuples (1,1) and "
      "(2,1). Hence Sigma does not (unrestrictedly) imply R: B -> A, "
      "although it finitely does (Theorem 4.4(b) counting argument).";
  return report;
}

}  // namespace ccfp
