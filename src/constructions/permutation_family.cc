#include "constructions/permutation_family.h"

#include "util/check.h"
#include "util/landau.h"
#include "util/strings.h"

namespace ccfp {

Ind PermutationFamily::SigmaOf(const Permutation& gamma) const {
  CCFP_CHECK_MSG(gamma.size() == m, "permutation size mismatch");
  Ind ind;
  ind.lhs_rel = 0;
  ind.rhs_rel = 0;
  ind.lhs.reserve(m);
  ind.rhs.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    ind.lhs.push_back(i);
    ind.rhs.push_back(gamma(i));
  }
  return ind;
}

std::vector<Ind> PermutationFamily::TranspositionInds() const {
  std::vector<Ind> inds;
  for (std::size_t i = 1; i < m; ++i) {
    inds.push_back(SigmaOf(Permutation::Transposition(m, i)));
  }
  return inds;
}

PermutationFamily MakePermutationFamily(std::size_t m) {
  CCFP_CHECK_MSG(m >= 1, "need at least one attribute");
  PermutationFamily family;
  family.m = m;
  std::vector<std::string> attrs;
  attrs.reserve(m);
  for (std::size_t i = 1; i <= m; ++i) attrs.push_back(StrCat("A", i));
  family.scheme = MakeScheme({{"R", attrs}});
  return family;
}

LandauInstance MakeLandauInstance(std::size_t m) {
  LandauInstance instance;
  instance.family = MakePermutationFamily(m);
  instance.gamma = MaxOrderPermutation(m);
  instance.order = instance.gamma.Order();
  instance.premise = instance.family.SigmaOf(instance.gamma);
  instance.target = instance.family.SigmaOf(instance.gamma.Inverse());
  return instance;
}

}  // namespace ccfp
