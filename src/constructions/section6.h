#ifndef CCFP_CONSTRUCTIONS_SECTION6_H_
#define CCFP_CONSTRUCTIONS_SECTION6_H_

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "core/dependency.h"
#include "core/schema.h"

namespace ccfp {

/// The Theorem 6.1 construction: for a fixed k, relation schemes R_0[A,B]
/// through R_k[A,B] with (index arithmetic mod k+1)
///   Sigma_k = { R_i: A -> B,  R_i[A] <= R_{i+1}[B]  :  0 <= i <= k },
///   sigma_k = R_0[B] <= R_k[A],
/// and Gamma_k = Sigma_k  u  { all trivial FDs, INDs, RDs }.
/// Sigma_k finitely implies sigma_k by the cardinality-cycle argument, but
/// Gamma_k is closed under k-ary finite implication — so no k-ary complete
/// axiomatization exists for finite implication of FDs and INDs (all
/// dependencies here are unary, all schemes two-attribute).
struct Section6Construction {
  std::size_t k = 0;
  SchemePtr scheme;
  std::vector<Fd> fds;    // R_i: A -> B
  std::vector<Ind> inds;  // R_i[A] <= R_{i+1}[B]
  /// sigma_k = R_0[B] <= R_k[A].
  Ind sigma_target;
  /// The reversed FDs R_i: B -> A, also finitely implied (Section 6 note).
  std::vector<Fd> reversed_fds;
  /// The bounded sentence universe: FDs (lhs size <= 1, including the
  /// empty-lhs "constant" FDs of Case 1), INDs of width <= 2, unary RDs.
  std::vector<Dependency> universe;
  /// Gamma_k = Sigma_k u trivial members of the universe.
  std::vector<Dependency> gamma;

  /// Sigma_k as a Dependency list (FDs then INDs).
  std::vector<Dependency> SigmaDeps() const;

  /// The IND delta_j = R_j[A] <= R_{j+1 mod k+1}[B].
  const Ind& delta(std::size_t j) const { return inds[j]; }
};

Section6Construction MakeSection6(std::size_t k);

/// The Armstrong database d of Figure 6.1, cyclically rotated so that the
/// omitted IND is delta_j = R_j[A] <= R_{j+1}[B]: d obeys *exactly*
/// Gamma_k - delta_j among all FDs, INDs, and RDs of the universe
/// (property (6.1) of the paper). In particular d violates sigma_k.
///
/// Canonical contents (before rotation; values are pairs (m, tag) encoded
/// as integers m * (k + 3) + tag):
///   r_0 = { ((0,0),(0,k+1)), ((1,0),(1,k+1)), ((2,0),(1,k+1)) }
///   r_i = { ((j,i),(j,i-1)) : 0 <= j <= 2i+1 } u { ((2i+2,i),(2i+1,i-1)) }
/// which omits delta_k = R_k[A] <= R_0[B]; rotation relabels relations.
Database MakeSection6Armstrong(const Section6Construction& construction,
                               std::size_t omitted_j);

/// The subset of the universe that the rotated Figure 6.1 database is
/// expected to obey: trivial sentences plus Sigma_k - delta_j.
std::vector<Dependency> Section6ExpectedSatisfied(
    const Section6Construction& construction, std::size_t omitted_j);

}  // namespace ccfp

#endif  // CCFP_CONSTRUCTIONS_SECTION6_H_
