#include "constructions/section7.h"

#include "axiom/sentence.h"
#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

std::vector<Dependency> Section7Construction::SigmaDeps() const {
  std::vector<Dependency> deps;
  deps.reserve(fds.size() + inds.size());
  for (const Fd& fd : fds) deps.push_back(Dependency(fd));
  for (const Ind& ind : inds) deps.push_back(Dependency(ind));
  return deps;
}

Ind Section7Construction::beta(std::size_t j) const {
  CCFP_CHECK(j < n);
  return MakeInd(*scheme, "F", {"B"}, StrCat("H", j), {"B"});
}

Section7Construction MakeSection7(std::size_t n) {
  CCFP_CHECK_MSG(n >= 1, "Section 7 needs n >= 1");
  Section7Construction c;
  c.n = n;

  DatabaseSchemeBuilder builder;
  builder.AddRelation("F", {"A", "B", "C"});
  builder.AddRelation("G0", {"A", "B", "C"});
  for (std::size_t i = 1; i <= n; ++i) {
    builder.AddRelation(StrCat("G", i), {"B", "C"});
  }
  for (std::size_t i = 0; i < n; ++i) {
    builder.AddRelation(StrCat("H", i), {"B", "C"});
  }
  builder.AddRelation(StrCat("H", n), {"B", "C", "D"});
  Result<SchemePtr> scheme = builder.Build();
  CCFP_CHECK(scheme.ok());
  c.scheme = scheme.MoveValue();

  const DatabaseScheme& s = *c.scheme;
  c.f = s.FindRelation("F").value();
  for (std::size_t i = 0; i <= n; ++i) {
    c.g.push_back(s.FindRelation(StrCat("G", i)).value());
    c.h.push_back(s.FindRelation(StrCat("H", i)).value());
  }

  // --- INDs ---------------------------------------------------------------
  // alpha_0 = F[A,B] <= G_0[A,B]
  c.inds.push_back(MakeInd(s, "F", {"A", "B"}, "G0", {"A", "B"}));
  // alpha_i = F[B] <= G_i[B]  (1 <= i <= n)
  for (std::size_t i = 1; i <= n; ++i) {
    c.inds.push_back(MakeInd(s, "F", {"B"}, StrCat("G", i), {"B"}));
  }
  // beta_i = F[B] <= H_i[B]  (0 <= i < n)
  for (std::size_t i = 0; i < n; ++i) {
    c.inds.push_back(MakeInd(s, "F", {"B"}, StrCat("H", i), {"B"}));
  }
  // beta_n = F[B,C] <= H_n[B,D]
  c.inds.push_back(MakeInd(s, "F", {"B", "C"}, StrCat("H", n), {"B", "D"}));
  // gamma_i = H_i[B,C] <= G_i[B,C]  (0 <= i <= n)
  for (std::size_t i = 0; i <= n; ++i) {
    c.inds.push_back(MakeInd(s, StrCat("H", i), {"B", "C"}, StrCat("G", i),
                             {"B", "C"}));
  }
  // gamma'_i = H_i[B,C] <= G_{i+1}[B,C]  (0 <= i < n)
  for (std::size_t i = 0; i < n; ++i) {
    c.inds.push_back(MakeInd(s, StrCat("H", i), {"B", "C"},
                             StrCat("G", i + 1), {"B", "C"}));
  }

  // --- FDs ----------------------------------------------------------------
  // delta_0 = G_0: A -> C
  c.fds.push_back(MakeFd(s, "G0", {"A"}, {"C"}));
  // eps_i = G_i: B -> C  (0 <= i <= n)
  for (std::size_t i = 0; i <= n; ++i) {
    c.fds.push_back(MakeFd(s, StrCat("G", i), {"B"}, {"C"}));
  }
  // theta_n = H_n: C -> D
  c.fds.push_back(MakeFd(s, StrCat("H", n), {"C"}, {"D"}));

  // sigma = F: A -> C.
  c.sigma = MakeFd(s, "F", {"A"}, {"C"});

  // --- phi ------------------------------------------------------------------
  c.phi.push_back(MakeFd(s, "F", {"A"}, {"C"}));
  c.phi.push_back(MakeFd(s, "F", {"B"}, {"C"}));
  c.phi.push_back(MakeFd(s, "G0", {"A"}, {"C"}));
  c.phi.push_back(MakeFd(s, "G0", {"B"}, {"C"}));
  for (std::size_t i = 1; i <= n; ++i) {
    c.phi.push_back(MakeFd(s, StrCat("G", i), {"B"}, {"C"}));
  }
  for (std::size_t i = 0; i < n; ++i) {
    c.phi.push_back(MakeFd(s, StrCat("H", i), {"B"}, {"C"}));
  }
  c.phi.push_back(MakeFd(s, StrCat("H", n), {"B"}, {"C"}));
  c.phi.push_back(MakeFd(s, StrCat("H", n), {"C"}, {"D"}));
  return c;
}

std::vector<Dependency> Section7Universe(const Section7Construction& c) {
  UniverseOptions options;
  options.include_fds = true;
  options.include_inds = true;
  options.include_rds = true;
  options.max_fd_lhs = 1;
  options.max_ind_width = 2;
  return EnumerateUniverse(*c.scheme, options);
}

}  // namespace ccfp
