#ifndef CCFP_CONSTRUCTIONS_THEOREM44_H_
#define CCFP_CONSTRUCTIONS_THEOREM44_H_

#include <cstdint>
#include <string>

#include "core/database.h"
#include "core/dependency.h"
#include "core/schema.h"

namespace ccfp {

/// Theorem 4.4: finite implication differs from unrestricted implication
/// for FDs and INDs taken together. The gadget is
///   Sigma = { R: A -> B,  R[A] <= R[B] }
/// with the two finitely-implied (but not unrestrictedly implied)
/// conclusions
///   (a) the IND R[B] <= R[A];
///   (b) the FD  R: B -> A.
struct Theorem44Gadget {
  SchemePtr scheme;  // R[A, B]
  Fd fd;             // R: A -> B
  Ind ind;           // R[A] <= R[B]
  Ind ind_conclusion;  // R[B] <= R[A] — part (a)
  Fd fd_conclusion;    // R: B -> A   — part (b)
};

Theorem44Gadget MakeTheorem44Gadget();

/// The length-N prefix of the Figure 4.1 infinite witness
/// r = {(i+1, i) : i >= 0}: the tuples (1,0), (2,1), ..., (N, N-1).
/// Every such prefix *violates* Sigma (the IND fails at the maximal A
/// value) — which is exactly why the infinite relation is needed as a
/// counterexample and why Sigma |=fin holds vacuously along this family.
Database Figure41Prefix(const Theorem44Gadget& gadget, std::size_t n);

/// The length-N prefix of the Figure 4.2 infinite witness
/// r = {(1,1)} u {(i+1, i) : i >= 1}: tuples (1,1), (2,1), (3,2), ...
Database Figure42Prefix(const Theorem44Gadget& gadget, std::size_t n);

/// Symbolic satisfaction facts for the two infinite witnesses. Each bool is
/// established by closed-form reasoning on the defining sets (the relations
/// cannot be materialized); `explanation` spells the argument out.
struct InfiniteWitnessReport {
  bool obeys_fd = false;
  bool obeys_ind = false;
  bool obeys_ind_conclusion = false;
  bool obeys_fd_conclusion = false;
  std::string explanation;
};

/// Figure 4.1 witness {(i+1, i) : i >= 0}: obeys Sigma, violates the IND
/// conclusion R[B] <= R[A] (0 is a B entry but not an A entry).
InfiniteWitnessReport Figure41Witness();

/// Figure 4.2 witness {(1,1)} u {(i+1, i) : i >= 1}: obeys Sigma, violates
/// the FD conclusion R: B -> A (tuples (1,1) and (2,1) share B = 1).
InfiniteWitnessReport Figure42Witness();

}  // namespace ccfp

#endif  // CCFP_CONSTRUCTIONS_THEOREM44_H_
