#ifndef CCFP_CONSTRUCTIONS_SECTION7_H_
#define CCFP_CONSTRUCTIONS_SECTION7_H_

#include <cstdint>
#include <vector>

#include "core/dependency.h"
#include "core/schema.h"

namespace ccfp {

/// The Theorem 7.1 construction: for fixed n (with k < n), relation schemes
///   F[A,B,C], G_0[A,B,C], G_i[B,C] (1 <= i <= n),
///   H_i[B,C] (0 <= i < n), H_n[B,C,D],
/// and the dependency set Sigma:
///   alpha_0 = F[A,B] <= G_0[A,B]
///   alpha_i = F[B]   <= G_i[B]        (1 <= i <= n)
///   beta_i  = F[B]   <= H_i[B]        (0 <= i < n)
///   beta_n  = F[B,C] <= H_n[B,D]
///   gamma_i  = H_i[B,C] <= G_i[B,C]   (0 <= i <= n)
///   gamma'_i = H_i[B,C] <= G_{i+1}[B,C] (0 <= i < n)
///   delta_0 = G_0: A -> C
///   eps_i   = G_i: B -> C             (0 <= i <= n)
///   theta_n = H_n: C -> D
/// with sigma = F: A -> C. Sigma |= sigma (Lemma 7.2, re-derivable by the
/// chase), yet Gamma = phi+ u lambda+ u omega - {F: A -> C} is closed under
/// k-ary implication for every k < n — so no k-ary complete axiomatization
/// exists for (unrestricted) implication of FDs and INDs. Every FD here is
/// unary and every IND at most binary; no scheme has more than 3 attributes.
struct Section7Construction {
  std::size_t n = 0;
  SchemePtr scheme;
  RelId f = 0;               // F
  std::vector<RelId> g;      // G_0..G_n
  std::vector<RelId> h;      // H_0..H_n

  std::vector<Fd> fds;       // delta_0, eps_i, theta_n
  std::vector<Ind> inds;     // alpha, beta, gamma families
  Fd sigma;                  // F: A -> C

  /// phi: the designated FD sets of the proof —
  /// phi(F) = {F:A->C, F:B->C}, phi(G_0) = {G_0:A->C, G_0:B->C},
  /// phi(G_i) = {G_i:B->C}, phi(H_i) = {H_i:B->C} (i<n),
  /// phi(H_n) = {H_n:B->C, H_n:C->D}.
  std::vector<Fd> phi;

  std::vector<Dependency> SigmaDeps() const;

  /// beta_j = F[B] <= H_j[B] for j < n (the dependencies Lemma 7.9 drops).
  Ind beta(std::size_t j) const;
};

Section7Construction MakeSection7(std::size_t n);

/// The bounded sentence universe for Section 7 demonstrations: FDs with
/// lhs size <= 1 (the proof's FDs are unary), INDs of width <= 2, unary
/// RDs.
std::vector<Dependency> Section7Universe(const Section7Construction& c);

}  // namespace ccfp

#endif  // CCFP_CONSTRUCTIONS_SECTION7_H_
