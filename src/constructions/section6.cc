#include "constructions/section6.h"

#include "axiom/sentence.h"
#include "core/tuple.h"
#include "util/check.h"
#include "util/strings.h"

namespace ccfp {

std::vector<Dependency> Section6Construction::SigmaDeps() const {
  std::vector<Dependency> deps;
  deps.reserve(fds.size() + inds.size());
  for (const Fd& fd : fds) deps.push_back(Dependency(fd));
  for (const Ind& ind : inds) deps.push_back(Dependency(ind));
  return deps;
}

Section6Construction MakeSection6(std::size_t k) {
  Section6Construction c;
  c.k = k;

  DatabaseSchemeBuilder builder;
  for (std::size_t i = 0; i <= k; ++i) {
    builder.AddRelation(StrCat("R", i), {"A", "B"});
  }
  Result<SchemePtr> scheme = builder.Build();
  CCFP_CHECK(scheme.ok());
  c.scheme = scheme.MoveValue();

  for (std::size_t i = 0; i <= k; ++i) {
    RelId rel = static_cast<RelId>(i);
    RelId next = static_cast<RelId>((i + 1) % (k + 1));
    c.fds.push_back(Fd{rel, {0}, {1}});            // R_i: A -> B
    c.inds.push_back(Ind{rel, {0}, next, {1}});    // R_i[A] <= R_{i+1}[B]
    c.reversed_fds.push_back(Fd{rel, {1}, {0}});   // R_i: B -> A
  }
  // sigma_k = R_0[B] <= R_k[A].
  c.sigma_target = Ind{0, {1}, static_cast<RelId>(k), {0}};

  UniverseOptions options;
  options.include_fds = true;
  options.include_inds = true;
  options.include_rds = true;
  options.max_fd_lhs = 1;  // unary + empty-lhs constant FDs (Case 1)
  options.max_ind_width = 2;
  c.universe = EnumerateUniverse(*c.scheme, options);

  c.gamma = TrivialSubset(*c.scheme, c.universe);
  for (const Dependency& dep : c.SigmaDeps()) c.gamma.push_back(dep);
  return c;
}

Database MakeSection6Armstrong(const Section6Construction& construction,
                               std::size_t omitted_j) {
  const std::size_t k = construction.k;
  CCFP_CHECK(omitted_j <= k);

  // Value (m, tag) encoded injectively: tags range over 0..k+1.
  auto val = [&](std::int64_t m, std::int64_t tag) {
    return Value::Int(m * static_cast<std::int64_t>(k + 3) + tag);
  };

  // Rotation: canonical relation index i is stored as relation pi(i) where
  // pi(k) = omitted_j, i.e. pi(i) = (i + omitted_j + 1) mod (k+1).
  auto pi = [&](std::size_t i) {
    return static_cast<RelId>((i + omitted_j + 1) % (k + 1));
  };

  Database db(construction.scheme);
  // Canonical r_0.
  db.Insert(pi(0), {val(0, 0), val(0, static_cast<std::int64_t>(k) + 1)});
  db.Insert(pi(0), {val(1, 0), val(1, static_cast<std::int64_t>(k) + 1)});
  db.Insert(pi(0), {val(2, 0), val(1, static_cast<std::int64_t>(k) + 1)});
  // Canonical r_i for 1 <= i <= k.
  for (std::size_t i = 1; i <= k; ++i) {
    std::int64_t ii = static_cast<std::int64_t>(i);
    for (std::int64_t j = 0; j <= 2 * ii + 1; ++j) {
      db.Insert(pi(i), {val(j, ii), val(j, ii - 1)});
    }
    db.Insert(pi(i), {val(2 * ii + 2, ii), val(2 * ii + 1, ii - 1)});
  }
  return db;
}

std::vector<Dependency> Section6ExpectedSatisfied(
    const Section6Construction& construction, std::size_t omitted_j) {
  std::vector<Dependency> expected =
      TrivialSubset(*construction.scheme, construction.universe);
  for (const Fd& fd : construction.fds) expected.push_back(Dependency(fd));
  for (std::size_t i = 0; i < construction.inds.size(); ++i) {
    if (i == omitted_j) continue;
    expected.push_back(Dependency(construction.inds[i]));
  }
  return expected;
}

}  // namespace ccfp
