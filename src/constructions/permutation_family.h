#ifndef CCFP_CONSTRUCTIONS_PERMUTATION_FAMILY_H_
#define CCFP_CONSTRUCTIONS_PERMUTATION_FAMILY_H_

#include <cstdint>
#include <vector>

#include "core/dependency.h"
#include "core/schema.h"
#include "util/permutation.h"

namespace ccfp {

/// The Section 3 permutation examples: over a single relation scheme
/// R[A_1, ..., A_m], each permutation gamma of the positions is associated
/// with the IND
///   sigma(gamma) = R[A_1, ..., A_m] <= R[A_gamma(1), ..., A_gamma(m)].
///
/// Two uses in the paper:
///  * the transpositions gamma_1..gamma_m generate all permutations, so
///    {sigma(gamma_i)} implies *every* IND over R — the naive closure
///    explodes;
///  * for gamma of maximal order f(m) (Landau's function) and
///    delta = gamma^{f(m)-1} = gamma^{-1}, deciding
///    sigma(gamma) |= sigma(delta) forces the Corollary 3.2 procedure
///    through f(m) - 1 expression steps: superpolynomial in m.
struct PermutationFamily {
  std::size_t m = 0;
  SchemePtr scheme;  // R[A1..Am]

  /// sigma(gamma) for an arbitrary permutation of m points.
  Ind SigmaOf(const Permutation& gamma) const;

  /// The generating set {sigma(t_1), ..., sigma(t_{m-1})} of transpositions
  /// (0 i): implies every IND over R.
  std::vector<Ind> TranspositionInds() const;
};

PermutationFamily MakePermutationFamily(std::size_t m);

/// The superpolynomial single-IND instance: gamma of order f(m) and the
/// target sigma(gamma^{-1}).
struct LandauInstance {
  PermutationFamily family;
  Permutation gamma;
  unsigned __int128 order = 0;  // f(m)
  Ind premise;                  // sigma(gamma)
  Ind target;                   // sigma(gamma^{-1})
};

LandauInstance MakeLandauInstance(std::size_t m);

}  // namespace ccfp

#endif  // CCFP_CONSTRUCTIONS_PERMUTATION_FAMILY_H_
