#ifndef CCFP_CONSTRUCTIONS_SAGIV_WALECKA_H_
#define CCFP_CONSTRUCTIONS_SAGIV_WALECKA_H_

#include <cstdint>
#include <vector>

#include "core/dependency.h"
#include "core/schema.h"

namespace ccfp {

/// The Sagiv–Walecka family used in Theorem 5.3: over a relation scheme
/// R[A_1, ..., A_{k+1}, B],
///   Sigma_k = { A_1 ->> A_2 | B,  A_2 ->> A_3 | B, ...,
///               A_k ->> A_{k+1} | B,  A_{k+1} ->> A_1 | B },
///   sigma_k = A_1 ->> A_{k+1} | B.
/// Sagiv and Walecka showed these satisfy the Corollary 5.2 conditions, so
/// no k-ary complete axiomatization exists for EMVDs.
struct SagivWaleckaConstruction {
  std::size_t k = 0;
  SchemePtr scheme;
  std::vector<Emvd> sigma;
  Emvd target;

  std::vector<Dependency> SigmaDeps() const;
};

SagivWaleckaConstruction MakeSagivWalecka(std::size_t k);

}  // namespace ccfp

#endif  // CCFP_CONSTRUCTIONS_SAGIV_WALECKA_H_
