// The headline theorem, executable: for no k does a k-ary complete
// axiomatization of FDs + INDs exist (Theorems 5.1, 6.1). This example
// builds the Section 6 construction for a chosen k, exhibits the Armstrong
// databases of Figure 6.1, and runs the Theorem 5.1 closure checks.
#include <cstdlib>
#include <iostream>

#include "axiom/kary.h"
#include "axiom/oracle.h"
#include "constructions/section6.h"
#include "core/satisfies.h"
#include "interact/unary_finite.h"

int main(int argc, char** argv) {
  using namespace ccfp;
  std::size_t k = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 2;
  if (k < 1 || k > 3) k = 2;

  Section6Construction c = MakeSection6(k);
  std::cout << "=== Theorem 6.1 construction, k = " << k << " ===\n";
  std::cout << "Sigma_k:\n";
  for (const Dependency& dep : c.SigmaDeps()) {
    std::cout << "  " << dep.ToString(*c.scheme) << "\n";
  }
  std::cout << "sigma_k = " << Dependency(c.sigma_target).ToString(*c.scheme)
            << "\n\n";

  // 1. Sigma_k finitely implies sigma_k (the counting argument).
  UnaryFiniteImplication finite_engine(c.scheme, c.fds, c.inds);
  std::cout << "Sigma_k |=fin sigma_k : "
            << (finite_engine.Implies(c.sigma_target) ? "yes" : "NO?!")
            << "   (cardinality-cycle rules)\n";

  // 2. The Figure 6.1 Armstrong databases: one per omitted IND.
  std::cout << "\nArmstrong databases d(delta_j), each obeying exactly "
               "Gamma - delta_j:\n";
  for (std::size_t j = 0; j <= k; ++j) {
    Database d = MakeSection6Armstrong(c, j);
    auto mismatch =
        ObeysExactly(d, c.universe, Section6ExpectedSatisfied(c, j));
    std::cout << "  d(delta_" << j << "): " << d.TotalTuples()
              << " tuples, property (6.1) "
              << (mismatch.has_value() ? "FAILS" : "verified") << "\n";
  }
  Database d0 = MakeSection6Armstrong(c, 0);
  std::cout << "\nd(delta_0) contents (Figure 6.1, rotated):\n"
            << d0.ToString();

  // 3. Theorem 5.1: Gamma is closed under k-ary finite implication...
  std::vector<Database> witnesses;
  for (std::size_t j = 0; j <= k; ++j) {
    witnesses.push_back(MakeSection6Armstrong(c, j));
  }
  CounterexampleOracle refuter(std::move(witnesses));
  KaryStats stats;
  auto escape = FindKaryEscape(c.universe, c.gamma, refuter, k, &stats);
  std::cout << "\nGamma closed under " << k << "-ary finite implication: "
            << (escape.has_value() ? "NO?!" : "yes") << "  ("
            << stats.oracle_queries << " oracle queries)\n";

  // 4. ... but not under full implication: sigma_k escapes.
  UnaryFiniteOracle finite_oracle(c.scheme);
  auto full_escape = FindFullEscape(c.universe, c.gamma, finite_oracle);
  if (full_escape.has_value()) {
    std::cout << "Gamma NOT closed under unbounded implication; escape:\n  "
              << full_escape->conclusion.ToString(*c.scheme) << "\n";
  }
  std::cout << "\nBy Theorem 5.1, no " << k
            << "-ary complete axiomatization exists for finite implication "
               "of FDs and INDs over this scheme.\n";
  return 0;
}
