// Quickstart: model the paper's running example — "every manager is an
// employee of the department they manage" — check a database against the
// constraints, then ask the ONE implication front door, ImplicationSolver,
// what else must hold. The solver classifies each query's fragment
// (pure-FD / pure-IND / unary / mixed), routes it to the right engine, and
// returns a three-valued Verdict with checkable evidence.
#include <cstdio>
#include <iostream>

#include "core/parser.h"
#include "core/satisfies.h"
#include "solve/solver.h"

int main() {
  using namespace ccfp;

  // 1. Declare the database scheme.
  SchemePtr scheme = MakeScheme({
      {"MGR", {"NAME", "DEPT"}},
      {"EMP", {"NAME", "DEPT", "SALARY"}},
  });

  // 2. Declare constraints in ccfp's text syntax.
  std::vector<Dependency> constraints =
      ParseDependencies(*scheme, R"(
# Every manager manages inside their own department (paper, Section 3).
MGR[NAME, DEPT] <= EMP[NAME, DEPT]
# Employee name determines department and salary.
EMP: NAME -> DEPT, SALARY
)").value();

  // 3. Load a database and check it.
  Database db = ParseDatabase(scheme, R"(
MGR("Hilbert", "Math")
EMP("Hilbert", "Math", 100)
EMP("Noether", "Math", 120)
)").value();

  std::cout << "Database:\n" << db.ToString() << "\n";
  for (const Dependency& dep : constraints) {
    std::cout << (Satisfies(db, dep) ? "  holds:    " : "  VIOLATED: ")
              << dep.ToString(*scheme) << "\n";
  }

  // 4. A violation produces a concrete witness.
  Database bad = ParseDatabase(scheme, R"(
MGR("Galois", "Algebra")
EMP("Galois", "Analysis", 90)
)").value();
  auto violation = FindViolation(bad, constraints[0]);
  std::cout << "\nBroken database: " << violation->description << "\n";

  // 5. Implication through the façade: one solver per constraint set, one
  // Solve call per query, one Budget vocabulary for every engine behind
  // it. The solver routes each query by fragment.
  ImplicationSolver solver(scheme, constraints);
  Budget budget;  // steps / tuples / expressions, all defaulted

  // A mixed-fragment query (IND target, FD+IND sigma): does every manager
  // name appear as an employee name?
  Ind ind_query = MakeInd(*scheme, "MGR", {"NAME"}, "EMP", {"NAME"});
  Verdict ind_verdict = solver.Solve(Dependency(ind_query), budget).value();
  std::cout << "\n" << Dependency(ind_query).ToString(*scheme) << "\n"
            << ind_verdict.ToString(*scheme) << "\n";

  // An FD query on the employee relation. Sigma mixes FDs and INDs, so
  // this routes through the staged pipeline too; the pure-FD fast path
  // would fire if sigma held only FDs.
  Fd fd_query = MakeFd(*scheme, "EMP", {"NAME"}, {"SALARY"});
  Verdict fd_verdict = solver.Solve(Dependency(fd_query), budget).value();
  std::cout << "\n" << Dependency(fd_query).ToString(*scheme) << "\n"
            << fd_verdict.ToString(*scheme) << "\n";

  // A non-consequence: the verdict comes back kNotImplied with a concrete
  // counterexample database, already verified by Satisfies.
  Ind bogus = MakeInd(*scheme, "EMP", {"NAME"}, "MGR", {"NAME"});
  Verdict bogus_verdict = solver.Solve(Dependency(bogus), budget).value();
  std::cout << "\n" << Dependency(bogus).ToString(*scheme) << "\n"
            << bogus_verdict.ToString(*scheme) << "\n";
  if (bogus_verdict.counterexample.has_value()) {
    std::cout << "Counterexample database:\n"
              << bogus_verdict.counterexample->ToString();
  }
  return 0;
}
