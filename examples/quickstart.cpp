// Quickstart: model the paper's running example — "every manager is an
// employee of the department they manage" — check a database against the
// constraints, and ask the implication engine what else must hold.
#include <cstdio>
#include <iostream>

#include "core/parser.h"
#include "core/satisfies.h"
#include "fd/closure.h"
#include "ind/implication.h"

int main() {
  using namespace ccfp;

  // 1. Declare the database scheme.
  SchemePtr scheme = MakeScheme({
      {"MGR", {"NAME", "DEPT"}},
      {"EMP", {"NAME", "DEPT", "SALARY"}},
  });

  // 2. Declare constraints in ccfp's text syntax.
  std::vector<Dependency> constraints =
      ParseDependencies(*scheme, R"(
# Every manager manages inside their own department (paper, Section 3).
MGR[NAME, DEPT] <= EMP[NAME, DEPT]
# Employee name determines department and salary.
EMP: NAME -> DEPT, SALARY
)").value();

  // 3. Load a database and check it.
  Database db = ParseDatabase(scheme, R"(
MGR("Hilbert", "Math")
EMP("Hilbert", "Math", 100)
EMP("Noether", "Math", 120)
)").value();

  std::cout << "Database:\n" << db.ToString() << "\n";
  for (const Dependency& dep : constraints) {
    std::cout << (Satisfies(db, dep) ? "  holds:    " : "  VIOLATED: ")
              << dep.ToString(*scheme) << "\n";
  }

  // 4. A violation produces a concrete witness.
  Database bad = ParseDatabase(scheme, R"(
MGR("Galois", "Algebra")
EMP("Galois", "Analysis", 90)
)").value();
  auto violation = FindViolation(bad, constraints[0]);
  std::cout << "\nBroken database: " << violation->description << "\n";

  // 5. Implication: what do the declared INDs entail?
  std::vector<Ind> inds;
  for (const Dependency& dep : constraints) {
    if (dep.is_ind()) inds.push_back(dep.ind());
  }
  IndImplication engine(scheme, inds);
  Ind query = MakeInd(*scheme, "MGR", {"NAME"}, "EMP", {"NAME"});
  IndDecisionOptions options;
  options.want_proof = true;
  IndDecision decision = engine.Decide(query, options).value();
  std::cout << "\nDoes every manager name appear as an employee name?\n  "
            << Dependency(query).ToString(*scheme) << " : "
            << (decision.implied ? "implied" : "not implied") << "\n";
  if (decision.proof.has_value()) {
    std::cout << "Proof (IND1/IND2/IND3 system of the paper):\n"
              << decision.proof->ToString();
  }

  // 6. FD reasoning on the employee relation.
  std::vector<Fd> fds;
  for (const Dependency& dep : constraints) {
    if (dep.is_fd()) fds.push_back(dep.fd());
  }
  Fd fd_query = MakeFd(*scheme, "EMP", {"NAME"}, {"SALARY"});
  std::cout << "\nEMP: NAME -> SALARY is "
            << (FdImplies(*scheme, fds, fd_query) ? "implied" : "not implied")
            << " by the declared FDs.\n";
  return 0;
}
