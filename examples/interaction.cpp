// The Section 4 story: FDs and INDs interact. Propositions 4.1-4.3 derive
// new FDs, INDs, and repeating dependencies; Theorem 4.4 separates finite
// from unrestricted implication.
#include <iostream>

#include "chase/chase.h"
#include "constructions/theorem44.h"
#include "core/satisfies.h"
#include "interact/finite_vs_unrestricted.h"
#include "interact/rules.h"

int main() {
  using namespace ccfp;

  SchemePtr scheme = MakeScheme({{"R", {"X", "Y", "Z"}},
                                 {"S", {"T", "U", "V"}}});

  Ind ind_xy = MakeInd(*scheme, "R", {"X", "Y"}, "S", {"T", "U"});
  Ind ind_xz = MakeInd(*scheme, "R", {"X", "Z"}, "S", {"T", "V"});
  Ind ind_xz_same = MakeInd(*scheme, "R", {"X", "Z"}, "S", {"T", "U"});
  Fd fd = MakeFd(*scheme, "S", {"T"}, {"U"});

  std::cout << "Premises:\n  " << Dependency(ind_xy).ToString(*scheme)
            << "\n  " << Dependency(ind_xz).ToString(*scheme) << "\n  "
            << Dependency(fd).ToString(*scheme) << "\n\n";

  // Proposition 4.1: pull the FD back through the IND.
  Fd pullback = ApplyPullback(*scheme, ind_xy, fd).value();
  std::cout << "Prop 4.1 (pullback):   "
            << Dependency(pullback).ToString(*scheme) << "\n";

  // Proposition 4.2: collect the two INDs into a wider one.
  Ind collected = ApplyCollection(*scheme, ind_xy, ind_xz, fd).value();
  std::cout << "Prop 4.2 (collection): "
            << Dependency(collected).ToString(*scheme) << "\n";

  // Proposition 4.3: the degenerate case yields a repeating dependency —
  // a sentence NOT expressible by FDs and INDs.
  Rd rd = DeriveRd(*scheme, ind_xy, ind_xz_same, fd).value();
  std::cout << "Prop 4.3 (repeating):  " << Dependency(rd).ToString(*scheme)
            << "   [with both INDs sharing the right-hand side]\n\n";

  // All three re-derived semantically by the chase.
  for (const Dependency& target :
       {Dependency(pullback), Dependency(collected)}) {
    Result<bool> implied = ChaseImplies(
        scheme, {fd}, {ind_xy, ind_xz}, target);
    std::cout << "chase confirms " << target.ToString(*scheme) << ": "
              << (implied.ok() && *implied ? "implied" : "NOT implied")
              << "\n";
  }
  Result<bool> rd_implied =
      ChaseImplies(scheme, {fd}, {ind_xy, ind_xz_same}, Dependency(rd));
  std::cout << "chase confirms " << Dependency(rd).ToString(*scheme) << ": "
            << (rd_implied.ok() && *rd_implied ? "implied" : "NOT implied")
            << "\n\n";

  // Theorem 4.4: finite and unrestricted implication differ.
  Theorem44Gadget g = MakeTheorem44Gadget();
  std::cout << "Theorem 4.4 gadget: Sigma = { "
            << Dependency(g.fd).ToString(*g.scheme) << " ;  "
            << Dependency(g.ind).ToString(*g.scheme) << " }\n";
  for (const Dependency& target :
       {Dependency(g.ind_conclusion), Dependency(g.fd_conclusion)}) {
    FiniteVsUnrestricted verdict =
        CompareImplication(g.scheme, {g.fd}, {g.ind}, target);
    std::cout << "  " << target.ToString(*g.scheme)
              << "\n    finite:       "
              << ImplicationVerdictToString(verdict.finite) << "  ["
              << verdict.finite_engine << "]\n    unrestricted: "
              << ImplicationVerdictToString(verdict.unrestricted) << "  ["
              << verdict.unrestricted_engine << "]\n";
  }

  std::cout << "\nWhy no finite counterexample exists: every finite prefix "
               "of the infinite witness violates Sigma —\n";
  for (std::size_t n : {4u, 16u, 64u}) {
    Database prefix = Figure41Prefix(g, n);
    std::cout << "  prefix n=" << n << ": FD "
              << (Satisfies(prefix, g.fd) ? "holds" : "fails") << ", IND "
              << (Satisfies(prefix, g.ind) ? "holds" : "fails (boundary)")
              << "\n";
  }
  std::cout << "\n" << Figure41Witness().explanation << "\n";
  return 0;
}
