// The Section 4 story: FDs and INDs interact. Propositions 4.1-4.3 derive
// new FDs, INDs, and repeating dependencies; Theorem 4.4 separates finite
// from unrestricted implication. The ImplicationSolver façade surfaces all
// of it through one entry point: the staged mixed pipeline re-derives the
// propositions (with stage-by-stage reports), and the semantics option
// exhibits the Theorem 4.4 split on the unary fragment.
#include <iostream>

#include "constructions/theorem44.h"
#include "core/satisfies.h"
#include "interact/rules.h"
#include "solve/solver.h"

int main() {
  using namespace ccfp;

  SchemePtr scheme = MakeScheme({{"R", {"X", "Y", "Z"}},
                                 {"S", {"T", "U", "V"}}});

  Ind ind_xy = MakeInd(*scheme, "R", {"X", "Y"}, "S", {"T", "U"});
  Ind ind_xz = MakeInd(*scheme, "R", {"X", "Z"}, "S", {"T", "V"});
  Ind ind_xz_same = MakeInd(*scheme, "R", {"X", "Z"}, "S", {"T", "U"});
  Fd fd = MakeFd(*scheme, "S", {"T"}, {"U"});

  std::cout << "Premises:\n  " << Dependency(ind_xy).ToString(*scheme)
            << "\n  " << Dependency(ind_xz).ToString(*scheme) << "\n  "
            << Dependency(fd).ToString(*scheme) << "\n\n";

  // Propositions 4.1-4.3, applied syntactically.
  Fd pullback = ApplyPullback(*scheme, ind_xy, fd).value();
  std::cout << "Prop 4.1 (pullback):   "
            << Dependency(pullback).ToString(*scheme) << "\n";
  Ind collected = ApplyCollection(*scheme, ind_xy, ind_xz, fd).value();
  std::cout << "Prop 4.2 (collection): "
            << Dependency(collected).ToString(*scheme) << "\n";
  Rd rd = DeriveRd(*scheme, ind_xy, ind_xz_same, fd).value();
  std::cout << "Prop 4.3 (repeating):  " << Dependency(rd).ToString(*scheme)
            << "   [with both INDs sharing the right-hand side]\n\n";

  // All three re-derived semantically through the façade. Each query is a
  // mixed-fragment instance, so the solver runs its staged pipeline:
  // sound interaction rules first, then the chase proof — the stage
  // reports show which stage was decisive.
  ImplicationSolver solver(
      scheme, {Dependency(fd), Dependency(ind_xy), Dependency(ind_xz)});
  for (const Dependency& target :
       {Dependency(pullback), Dependency(collected)}) {
    Verdict verdict = solver.Solve(target).value();
    std::cout << "solver on " << target.ToString(*scheme) << ":\n"
              << verdict.ToString(*scheme) << "\n\n";
  }
  ImplicationSolver rd_solver(
      scheme,
      {Dependency(fd), Dependency(ind_xy), Dependency(ind_xz_same)});
  Verdict rd_verdict = rd_solver.Solve(Dependency(rd)).value();
  std::cout << "solver on " << Dependency(rd).ToString(*scheme) << ":\n"
            << rd_verdict.ToString(*scheme) << "\n\n";

  // Theorem 4.4: finite and unrestricted implication differ. The gadget
  // is unary, so BOTH semantics have exact engines — ask the same solver
  // question twice, varying only the semantics option.
  Theorem44Gadget g = MakeTheorem44Gadget();
  std::cout << "Theorem 4.4 gadget: Sigma = { "
            << Dependency(g.fd).ToString(*g.scheme) << " ;  "
            << Dependency(g.ind).ToString(*g.scheme) << " }\n";
  std::vector<Dependency> gadget_sigma = {Dependency(g.fd),
                                          Dependency(g.ind)};
  for (const Dependency& target :
       {Dependency(g.ind_conclusion), Dependency(g.fd_conclusion)}) {
    SolveOptions finite_opts;
    finite_opts.semantics = ImplicationSemantics::kFinite;
    Verdict finite =
        SolveImplication(g.scheme, gadget_sigma, target, Budget(),
                         finite_opts)
            .value();
    Verdict unrestricted =
        SolveImplication(g.scheme, gadget_sigma, target).value();
    std::cout << "  " << target.ToString(*g.scheme)
              << "\n    finite:       "
              << ImplicationVerdictToString(finite.outcome) << "  ["
              << finite.engine << "]\n    unrestricted: "
              << ImplicationVerdictToString(unrestricted.outcome) << "  ["
              << unrestricted.engine << "]\n";
    if (!unrestricted.stages.empty() &&
        !unrestricted.stages.front().note.empty()) {
      std::cout << "    note: " << unrestricted.stages.front().note << "\n";
    }
  }

  std::cout << "\nWhy no finite counterexample exists: every finite prefix "
               "of the infinite witness violates Sigma —\n";
  for (std::size_t n : {4u, 16u, 64u}) {
    Database prefix = Figure41Prefix(g, n);
    std::cout << "  prefix n=" << n << ": FD "
              << (Satisfies(prefix, g.fd) ? "holds" : "fails") << ", IND "
              << (Satisfies(prefix, g.ind) ? "holds" : "fails (boundary)")
              << "\n";
  }
  std::cout << "\n" << Figure41Witness().explanation << "\n";
  return 0;
}
