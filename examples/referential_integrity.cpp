// Referential-integrity design: a small warehouse schema whose foreign-key
// graph is a set of INDs. Shows the decision procedure, its complexity
// caveat (Theorem 3.3: PSPACE-complete in general), and the polynomial
// special cases the paper recommends (typed INDs, bounded width, unary).
#include <iostream>

#include "chase/ind_chase.h"
#include "core/parser.h"
#include "ind/implication.h"
#include "ind/special.h"

int main() {
  using namespace ccfp;

  SchemePtr scheme = MakeScheme({
      {"ORDERS", {"ORDER_ID", "CUST_ID", "ITEM_ID"}},
      {"CUSTOMERS", {"CUST_ID", "REGION"}},
      {"ITEMS", {"ITEM_ID", "SUPPLIER_ID"}},
      {"SUPPLIERS", {"SUPPLIER_ID", "REGION"}},
      {"AUDIT", {"ORDER_ID", "CUST_ID", "ITEM_ID"}},
  });

  std::vector<Dependency> design = ParseDependencies(*scheme, R"(
# Foreign keys.
ORDERS[CUST_ID] <= CUSTOMERS[CUST_ID]
ORDERS[ITEM_ID] <= ITEMS[ITEM_ID]
ITEMS[SUPPLIER_ID] <= SUPPLIERS[SUPPLIER_ID]
# The audit trail mirrors orders (typed IND).
AUDIT[ORDER_ID, CUST_ID, ITEM_ID] <= ORDERS[ORDER_ID, CUST_ID, ITEM_ID]
)").value();

  std::vector<Ind> sigma;
  for (const Dependency& dep : design) sigma.push_back(dep.ind());
  IndImplication engine(scheme, sigma);

  std::cout << "Schema INDs:\n";
  for (const Dependency& dep : design) {
    std::cout << "  " << dep.ToString(*scheme) << "\n";
  }

  // Derived integrity: audited items resolve to suppliers.
  Ind derived = ParseDependency(*scheme, "AUDIT[ITEM_ID] <= ITEMS[ITEM_ID]")
                    .value()
                    .ind();
  IndDecisionOptions options;
  options.want_proof = true;
  IndDecision decision = engine.Decide(derived, options).value();
  std::cout << "\nDerived: " << Dependency(derived).ToString(*scheme)
            << " -> " << (decision.implied ? "implied" : "not implied")
            << " (chain length " << decision.chain_length << ")\n";
  std::cout << decision.proof->ToString();

  // Negative query: regions do not flow back.
  Ind not_derived =
      ParseDependency(*scheme, "CUSTOMERS[REGION] <= SUPPLIERS[REGION]")
          .value()
          .ind();
  std::cout << "\nNot derived: "
            << Dependency(not_derived).ToString(*scheme) << " -> "
            << (*engine.Implies(not_derived) ? "implied" : "not implied")
            << "\n";

  // The Rule (*) construction (Theorem 3.1) double-checks and also yields
  // a concrete counterexample database for the negative query.
  IndChaseResult chase =
      IndChaseDecide(scheme, sigma, not_derived).value();
  std::cout << "Rule (*) chase agrees: "
            << (chase.implied ? "implied" : "not implied")
            << "; counterexample database has " << chase.db.TotalTuples()
            << " tuples.\n";

  // Fast paths. All the INDs above are typed, so the polynomial typed
  // decision applies (end of Section 3 of the paper).
  Result<bool> typed = TypedIndImplies(*scheme, sigma, derived);
  std::cout << "\nTyped-IND fast path: "
            << (typed.ok() && *typed ? "implied" : "not implied / n-a")
            << "\n";
  std::cout << "Expression-space bound at width 1: "
            << ExpressionSpaceBound(*scheme, 1) << " (width 3: "
            << ExpressionSpaceBound(*scheme, 3)
            << ") — polynomial for fixed width, exponential in general "
               "(PSPACE-complete, Theorem 3.3).\n";
  return 0;
}
