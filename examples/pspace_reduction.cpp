// Theorem 3.3, executable: LINEAR BOUNDED AUTOMATON ACCEPTANCE reduces to
// IND implication. Builds a tiny nondeterministic machine, reduces it, and
// shows the accepting computation re-emerging as the Corollary 3.2
// expression chain.
#include <iostream>

#include "ind/implication.h"
#include "lba/lba.h"
#include "lba/reduction.h"

int main() {
  using namespace ccfp;

  // Machine accepting a^n for even n: erase with a parity toggle, then
  // sweep home and halt on a blank tape.
  LbaMachine machine;
  std::uint32_t s0 = machine.AddState("s0");
  std::uint32_t s1 = machine.AddState("s1");
  std::uint32_t r = machine.AddState("r");
  std::uint32_t h = machine.AddState("h");
  machine.SetStartState(s0);
  machine.SetHaltState(h);
  std::uint32_t a = machine.AddTapeSymbol("a");
  std::uint32_t blank = machine.blank();
  machine.AddTransition(s0, a, s1, blank, HeadMove::kRight);
  machine.AddTransition(s1, a, s0, blank, HeadMove::kRight);
  machine.AddTransition(s1, a, r, blank, HeadMove::kLeft);
  machine.AddTransition(r, blank, r, blank, HeadMove::kLeft);
  machine.AddTransition(r, blank, h, blank, HeadMove::kStay);

  for (std::size_t n : {4u, 5u}) {
    std::vector<std::uint32_t> input(n, a);
    std::cout << "=== input a^" << n << " ===\n";

    LbaRunResult direct = LbaAccepts(machine, input).value();
    std::cout << "direct search: "
              << (direct.accepts ? "accepts" : "rejects") << " ("
              << direct.configurations_explored
              << " configurations explored)\n";

    LbaToIndReduction red = BuildLbaToIndReduction(machine, input).value();
    std::cout << "reduction: 1 relation, "
              << red.scheme->relation(0).arity() << " attributes, "
              << red.sigma.size() << " INDs of width "
              << red.sigma.front().width() << "\n";

    IndImplication engine(red.scheme, red.sigma);
    IndDecision decision = engine.Decide(red.target).value();
    std::cout << "Sigma |= sigma : "
              << (decision.implied ? "yes" : "no")
              << "  — matches acceptance: "
              << (decision.implied == direct.accepts ? "OK" : "MISMATCH")
              << "\n";

    if (direct.accepts) {
      std::cout << "accepting run <-> expression chain (length "
                << decision.chain_length << "):\n";
      for (const auto& config : direct.accepting_run) {
        std::cout << "  " << machine.ConfigurationToString(config) << "\n";
      }
    }
    std::cout << "\n";
  }
  std::cout << "General case: deciding Sigma |= sigma for INDs is "
               "PSPACE-complete (Theorem 3.3).\n";
  return 0;
}
