// Schema audit: profile a concrete database for the dependencies it
// satisfies (mining), check declared constraints, and analyze normal
// forms — the design-time workflow the paper's introduction motivates
// ("INDs ... permit us to selectively define what data must be duplicated
// in what relations").
#include <iostream>

#include "core/parser.h"
#include "core/satisfies.h"
#include "fd/keys.h"
#include "fd/normal_forms.h"
#include "mine/discovery.h"

int main() {
  using namespace ccfp;

  SchemePtr scheme = MakeScheme({
      {"EMP", {"NAME", "DEPT", "CITY"}},
      {"MGR", {"NAME", "DEPT"}},
  });

  Database db = ParseDatabase(scheme, R"(
EMP("Hilbert",  "Math",    "Goettingen")
EMP("Noether",  "Math",    "Goettingen")
EMP("Artin",    "Algebra", "Hamburg")
EMP("Hasse",    "Algebra", "Hamburg")
MGR("Hilbert",  "Math")
MGR("Artin",    "Algebra")
)").value();

  std::cout << "Database under audit:\n" << db.ToString() << "\n";

  // 1. Mine the FDs the data satisfies.
  RelId emp = scheme->FindRelation("EMP").value();
  std::cout << "Mined minimal FDs on EMP (lhs <= 2):\n";
  FdMiningOptions fd_options;
  fd_options.max_lhs = 2;
  std::vector<Fd> mined_fds = MineFds(db, emp, fd_options);
  for (const Fd& fd : mined_fds) {
    std::cout << "  " << Dependency(fd).ToString(*scheme) << "\n";
  }

  // 2. Mine inclusion dependencies across relations.
  std::cout << "\nMined INDs (width <= 2):\n";
  IndMiningOptions ind_options;
  ind_options.max_width = 2;
  for (const Ind& ind : MineInds(db, ind_options)) {
    std::cout << "  " << Dependency(ind).ToString(*scheme) << "\n";
  }

  // 3. Key and normal-form analysis under the mined FDs.
  std::cout << "\nCandidate keys of EMP:\n";
  for (const auto& key : CandidateKeys(*scheme, emp, mined_fds)) {
    std::cout << "  {" << AttrNames(*scheme, emp, key) << "}\n";
  }
  std::cout << "EMP is " << (IsBcnf(*scheme, emp, mined_fds) ? "" : "NOT ")
            << "in BCNF, " << (Is3nf(*scheme, emp, mined_fds) ? "" : "NOT ")
            << "in 3NF under the mined FDs.\n";
  for (const NormalFormViolation& v :
       BcnfViolations(*scheme, emp, mined_fds)) {
    std::cout << "  violation: " << Dependency(v.fd).ToString(*scheme)
              << " — " << v.reason << "\n";
  }

  // 4. Declared design constraints, checked against the data.
  std::vector<Dependency> declared = ParseDependencies(*scheme, R"(
MGR[NAME, DEPT] <= EMP[NAME, DEPT]
EMP: NAME -> DEPT
EMP: DEPT -> CITY
)").value();
  std::cout << "\nDeclared constraints:\n";
  for (const Dependency& dep : declared) {
    auto violation = FindViolation(db, dep);
    if (violation.has_value()) {
      std::cout << "  VIOLATED: " << violation->description << "\n";
    } else {
      std::cout << "  ok:       " << dep.ToString(*scheme) << "\n";
    }
  }
  return 0;
}
